package term

import "sync"

// internEntry is the canonical record for one distinct interned string.
// Every Value built by Intern for the same string points at the same
// entry, so Equal can compare entry pointers and hashInto can reuse the
// precomputed content hash instead of re-folding the bytes.
type internEntry struct {
	s string
	h uint64
}

// interned maps string -> *internEntry. A sync.Map because interning
// happens on parse, recovery, and API boundaries that may run concurrently
// with expression evaluation inside parallel morsel workers; the table is
// read-mostly after warm-up, which is sync.Map's fast case.
var interned sync.Map

// Intern returns an atom/string value whose identity is shared with every
// other interned copy of s: equal interned strings carry the same entry
// pointer (O(1) Equal) and a precomputed content hash (O(1) hashing).
// Interning is idempotent and safe for concurrent use. Non-interned values
// built by NewString remain fully interoperable — they compare equal to
// and hash identically with interned copies.
func Intern(s string) Value {
	if e, ok := interned.Load(s); ok {
		ent := e.(*internEntry)
		return Value{kind: Str, s: ent.s, ie: ent}
	}
	ent := &internEntry{s: s, h: hashString(fnvOffset, s)}
	if prev, loaded := interned.LoadOrStore(ent.s, ent); loaded {
		ent = prev.(*internEntry)
	}
	return Value{kind: Str, s: ent.s, ie: ent}
}

// InternWithHash returns the interned value for s, seeding the intern
// table with a previously computed content hash — the disk engine's
// persisted intern table stores each atom alongside its hash so reopening
// a store rebuilds interned atoms without re-folding their bytes. The
// caller is responsible for h being s's true FNV-1a content hash (the
// persisted table checksums each record); if s is already interned the
// existing entry wins and h is ignored.
func InternWithHash(s string, h uint64) Value {
	if e, ok := interned.Load(s); ok {
		ent := e.(*internEntry)
		return Value{kind: Str, s: ent.s, ie: ent}
	}
	ent := &internEntry{s: s, h: h}
	if prev, loaded := interned.LoadOrStore(ent.s, ent); loaded {
		ent = prev.(*internEntry)
	}
	return Value{kind: Str, s: ent.s, ie: ent}
}

// InternValue returns v with any Str content interned: Str values are
// replaced by their interned form, compound terms intern their functor and
// arguments recursively, and other kinds pass through unchanged. Used at
// load boundaries (decode, CSV) so stored atoms enter the hot paths with
// cached hashes.
func InternValue(v Value) Value {
	switch v.kind {
	case Str:
		if v.ie != nil {
			return v
		}
		return Intern(v.s)
	case Compound:
		fn := InternValue(*v.fn)
		args := make([]Value, len(v.args))
		for i := range v.args {
			args[i] = InternValue(v.args[i])
		}
		return NewCompound(fn, args...)
	}
	return v
}

// Interned reports whether v is an interned Str value (used by tests).
func (v Value) Interned() bool { return v.ie != nil }
