package term

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary codec for values and tuples. Used for EDB persistence (§10: "storing
// EDB relations on disk between runs") and for canonical relation-name keys.

const (
	tagInt      = 1
	tagFloat    = 2
	tagStr      = 3
	tagCompound = 4
)

// NonTag is a byte guaranteed never to begin a value encoding: it is
// distinct from every kind tag AppendValue emits. Callers interleaving
// markers (e.g. "this register is unbound") with encoded values in one key
// buffer can use it without risk of colliding with a value's first byte.
// TestQuickNonTagDisjoint pins the guarantee.
const NonTag = 0xFF

// EncodedSize returns the exact number of bytes AppendValue would append
// for every value of t, without writing them. Block encoders use it to
// decide whether a compressed rendering beat the raw codec before paying
// to materialize the raw bytes.
func (t Tuple) EncodedSize() int {
	n := 0
	for i := range t {
		n += valueSize(&t[i])
	}
	return n
}

func valueSize(v *Value) int {
	switch v.kind {
	case Int:
		return 1 + varintLen(v.i)
	case Float:
		return 1 + 8
	case Str:
		return 1 + uvarintLen(uint64(len(v.s))) + len(v.s)
	case Compound:
		n := 1 + valueSize(v.fn) + uvarintLen(uint64(len(v.args)))
		for i := range v.args {
			n += valueSize(&v.args[i])
		}
		return n
	default:
		panic("term: sizing invalid value")
	}
}

func uvarintLen(u uint64) int {
	n := 1
	for u >= 0x80 {
		u >>= 7
		n++
	}
	return n
}

func varintLen(i int64) int {
	u := uint64(i) << 1
	if i < 0 {
		u = ^u
	}
	return uvarintLen(u)
}

// AppendValue appends a canonical binary encoding of v to dst. Equal values
// have equal encodings, so the encoding doubles as a map key.
func AppendValue(dst []byte, v Value) []byte {
	switch v.kind {
	case Int:
		dst = append(dst, tagInt)
		dst = binary.AppendVarint(dst, v.i)
	case Float:
		dst = append(dst, tagFloat)
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(v.f))
	case Str:
		dst = append(dst, tagStr)
		dst = binary.AppendUvarint(dst, uint64(len(v.s)))
		dst = append(dst, v.s...)
	case Compound:
		dst = append(dst, tagCompound)
		dst = AppendValue(dst, *v.fn)
		dst = binary.AppendUvarint(dst, uint64(len(v.args)))
		for i := range v.args {
			dst = AppendValue(dst, v.args[i])
		}
	default:
		panic("term: encoding invalid value")
	}
	return dst
}

// Key returns the canonical encoding of v as a string, suitable as a map key.
func Key(v Value) string { return string(AppendValue(nil, v)) }

// WriteValue writes the binary encoding of v to w.
func WriteValue(w io.Writer, v Value) error {
	_, err := w.Write(AppendValue(nil, v))
	return err
}

// ReadValue decodes one value from r.
func ReadValue(r *bufio.Reader) (Value, error) {
	tag, err := r.ReadByte()
	if err != nil {
		return Value{}, err
	}
	switch tag {
	case tagInt:
		i, err := binary.ReadVarint(r)
		if err != nil {
			return Value{}, err
		}
		return NewInt(i), nil
	case tagFloat:
		var buf [8]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return Value{}, err
		}
		return NewFloat(math.Float64frombits(binary.BigEndian.Uint64(buf[:]))), nil
	case tagStr:
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return Value{}, err
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return Value{}, err
		}
		// Intern decoded atoms: snapshot/WAL recovery and EDB loads feed
		// relations directly, so strings re-enter the hot paths carrying
		// their cached hash and interned identity.
		return Intern(string(buf)), nil
	case tagCompound:
		fn, err := ReadValue(r)
		if err != nil {
			return Value{}, err
		}
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return Value{}, err
		}
		args := make([]Value, n)
		for i := range args {
			if args[i], err = ReadValue(r); err != nil {
				return Value{}, err
			}
		}
		return NewCompound(fn, args...), nil
	}
	return Value{}, fmt.Errorf("term: bad value tag %d", tag)
}

// WriteTuple writes the length-prefixed encoding of t to w.
func WriteTuple(w io.Writer, t Tuple) error {
	buf := binary.AppendUvarint(nil, uint64(len(t)))
	for i := range t {
		buf = AppendValue(buf, t[i])
	}
	_, err := w.Write(buf)
	return err
}

// ReadTuple decodes one length-prefixed tuple from r.
func ReadTuple(r *bufio.Reader) (Tuple, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	t := make(Tuple, n)
	for i := range t {
		if t[i], err = ReadValue(r); err != nil {
			return nil, err
		}
	}
	return t, nil
}
