// Package term implements the Glue-Nail data model: ground values
// (integers, floats, strings, and HiLog compound terms), tuples of ground
// values, and one-way pattern matching.
//
// Following the paper (§2), relations may contain only completely ground
// tuples, so the package provides matching rather than full unification:
// a pattern containing variables is matched against a ground value, binding
// variables as it goes. Atoms and strings are the same type (§2: "In Glue
// there is no difference between atoms and strings").
//
// HiLog support (§5): a compound term's functor is itself an arbitrary
// term, not just an atom, so predicate names like students(cs99) are
// ordinary values and can be stored in tuples as set-valued attributes.
package term

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind identifies the representation of a Value. The zero Kind is Invalid
// so that the zero Value is usable as an "unbound" marker in register files.
type Kind uint8

const (
	// Invalid is the kind of the zero Value; it never appears in relations.
	Invalid Kind = iota
	// Int is a 64-bit signed integer.
	Int
	// Float is a 64-bit IEEE float.
	Float
	// Str is an atom or string; Glue does not distinguish the two.
	Str
	// Compound is a HiLog compound term: functor term applied to arguments.
	Compound
)

// String returns the kind name for diagnostics.
func (k Kind) String() string {
	switch k {
	case Invalid:
		return "invalid"
	case Int:
		return "int"
	case Float:
		return "float"
	case Str:
		return "string"
	case Compound:
		return "compound"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Value is an immutable ground term. Values are small and intended to be
// passed by value; compound structure is shared.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	// ie is the interner entry when this Str value was built by Intern:
	// it carries the precomputed content hash and gives Equal a pointer
	// identity fast path. nil for non-interned strings and other kinds.
	ie   *internEntry
	fn   *Value
	args []Value
}

// NewInt returns an integer value.
func NewInt(i int64) Value { return Value{kind: Int, i: i} }

// NewFloat returns a float value.
func NewFloat(f float64) Value { return Value{kind: Float, f: f} }

// NewString returns an atom/string value.
func NewString(s string) Value { return Value{kind: Str, s: s} }

// NewCompound returns a compound term with the given functor term and
// arguments. The functor may be any ground term (HiLog); the argument slice
// is not copied and must not be mutated afterwards.
func NewCompound(functor Value, args ...Value) Value {
	f := functor
	return Value{kind: Compound, fn: &f, args: args}
}

// Atom is shorthand for NewCompound(Intern(name), args...), the common
// first-order case. The functor is interned: atom functors name relations
// and HiLog dispatch targets, so they are compared and hashed constantly.
func Atom(name string, args ...Value) Value {
	return NewCompound(Intern(name), args...)
}

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsZero reports whether v is the zero (unbound/invalid) Value.
func (v Value) IsZero() bool { return v.kind == Invalid }

// Int returns the integer payload; it panics if the kind is not Int.
func (v Value) Int() int64 {
	if v.kind != Int {
		panic("term: Int() on " + v.kind.String())
	}
	return v.i
}

// Float returns the float payload; it panics if the kind is not Float.
func (v Value) Float() float64 {
	if v.kind != Float {
		panic("term: Float() on " + v.kind.String())
	}
	return v.f
}

// Num returns the value as a float64 for arithmetic; ok is false when the
// value is not numeric.
func (v Value) Num() (f float64, ok bool) {
	switch v.kind {
	case Int:
		return float64(v.i), true
	case Float:
		return v.f, true
	}
	return 0, false
}

// Str returns the string payload; it panics if the kind is not Str.
func (v Value) Str() string {
	if v.kind != Str {
		panic("term: Str() on " + v.kind.String())
	}
	return v.s
}

// Functor returns the functor term of a compound value; it panics for
// non-compound values.
func (v Value) Functor() Value {
	if v.kind != Compound {
		panic("term: Functor() on " + v.kind.String())
	}
	return *v.fn
}

// NumArgs returns the number of arguments of a compound value and 0 for
// all other kinds.
func (v Value) NumArgs() int {
	if v.kind != Compound {
		return 0
	}
	return len(v.args)
}

// Arg returns the i'th argument of a compound value.
func (v Value) Arg(i int) Value { return v.args[i] }

// Args returns the argument slice of a compound value; the caller must not
// mutate it.
func (v Value) Args() []Value {
	if v.kind != Compound {
		return nil
	}
	return v.args
}

// Equal reports structural equality. Int and Float values are distinct even
// when numerically equal (1 != 1.0), mirroring matching on stored ground
// tuples.
func (v Value) Equal(w Value) bool {
	if v.kind != w.kind {
		return false
	}
	switch v.kind {
	case Invalid:
		return true
	case Int:
		return v.i == w.i
	case Float:
		return v.f == w.f
	case Str:
		// Two interned strings are equal iff they share the interner entry
		// (one entry per distinct string); mixed or non-interned pairs fall
		// back to byte comparison.
		if v.ie != nil && w.ie != nil {
			return v.ie == w.ie
		}
		return v.s == w.s
	case Compound:
		if len(v.args) != len(w.args) || !v.fn.Equal(*w.fn) {
			return false
		}
		for i := range v.args {
			if !v.args[i].Equal(w.args[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// Compare imposes a total order over ground values: by kind
// (Int < Float < Str < Compound), then by payload; compounds order by
// arity, then functor, then arguments left to right.
func (v Value) Compare(w Value) int {
	if v.kind != w.kind {
		if v.kind < w.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case Int:
		switch {
		case v.i < w.i:
			return -1
		case v.i > w.i:
			return 1
		}
		return 0
	case Float:
		switch {
		case v.f < w.f:
			return -1
		case v.f > w.f:
			return 1
		}
		return 0
	case Str:
		return strings.Compare(v.s, w.s)
	case Compound:
		if d := len(v.args) - len(w.args); d != 0 {
			if d < 0 {
				return -1
			}
			return 1
		}
		if c := v.fn.Compare(*w.fn); c != 0 {
			return c
		}
		for i := range v.args {
			if c := v.args[i].Compare(w.args[i]); c != 0 {
				return c
			}
		}
		return 0
	}
	return 0
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func hashUint64(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime
		x >>= 8
	}
	return h
}

func hashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// strHash returns the 64-bit content hash of a Str value: the interner's
// precomputed hash when available, the same FNV-1a fold computed on the
// spot otherwise — so interned and non-interned copies of one string
// always hash identically.
func (v Value) strHash() uint64 {
	if v.ie != nil {
		return v.ie.h
	}
	return hashString(fnvOffset, v.s)
}

// StrHash exposes the string content hash for persistence: the disk
// engine's intern table stores it next to each atom so InternWithHash can
// rebuild entries on reopen without re-folding the bytes. Panics on
// non-Str values.
func (v Value) StrHash() uint64 {
	if v.kind != Str {
		panic("term: StrHash() on " + v.kind.String())
	}
	return v.strHash()
}

func (v Value) hashInto(h uint64) uint64 {
	h = hashUint64(h, uint64(v.kind))
	switch v.kind {
	case Int:
		h = hashUint64(h, uint64(v.i))
	case Float:
		h = hashUint64(h, math.Float64bits(v.f))
	case Str:
		// Fold the string's own 64-bit content hash rather than its bytes:
		// the content hash is position-independent, so the interner can
		// precompute it once per distinct string.
		h = hashUint64(h, v.strHash())
	case Compound:
		h = v.fn.hashInto(h)
		h = hashUint64(h, uint64(len(v.args)))
		for i := range v.args {
			h = v.args[i].hashInto(h)
		}
	}
	return h
}

// Hash returns a 64-bit FNV-1a hash of the value; equal values hash equal.
func (v Value) Hash() uint64 { return v.hashInto(fnvOffset) }

// HashSeed is the initial accumulator for incremental hashing with
// HashInto; Hash() is HashInto(HashSeed).
const HashSeed uint64 = fnvOffset

// HashInto folds v into a running 64-bit hash, for callers (the VM's
// dedup/group kernels) that hash several live registers without building a
// tuple. Unbound (Invalid) values fold their kind tag, so an unbound
// register hashes differently from every ground value.
func (v Value) HashInto(h uint64) uint64 { return v.hashInto(h) }

// needsQuote reports whether an atom requires single quotes when printed.
func needsQuote(s string) bool {
	if s == "" {
		return true
	}
	c := s[0]
	if c < 'a' || c > 'z' {
		return true
	}
	for i := 1; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
		default:
			return true
		}
	}
	return false
}

func (v Value) appendTo(sb *strings.Builder) {
	switch v.kind {
	case Invalid:
		sb.WriteString("<unbound>")
	case Int:
		sb.WriteString(strconv.FormatInt(v.i, 10))
	case Float:
		s := strconv.FormatFloat(v.f, 'g', -1, 64)
		sb.WriteString(s)
		if !strings.ContainsAny(s, ".eE") {
			sb.WriteString(".0")
		}
	case Str:
		if needsQuote(v.s) {
			sb.WriteByte('\'')
			for _, r := range v.s {
				if r == '\'' || r == '\\' {
					sb.WriteByte('\\')
				}
				sb.WriteRune(r)
			}
			sb.WriteByte('\'')
		} else {
			sb.WriteString(v.s)
		}
	case Compound:
		v.fn.appendTo(sb)
		sb.WriteByte('(')
		for i, a := range v.args {
			if i > 0 {
				sb.WriteByte(',')
			}
			a.appendTo(sb)
		}
		sb.WriteByte(')')
	}
}

// String renders the value in Glue source syntax; atoms that need quoting
// are single-quoted.
func (v Value) String() string {
	var sb strings.Builder
	v.appendTo(&sb)
	return sb.String()
}
