package term

import (
	"testing"
	"testing/quick"
)

// TestInternParity is the contract that lets interned and non-interned
// strings mix freely in one relation: equal contents must compare Equal in
// every direction and fold to identical hashes, whether the value came
// from Intern, NewString, or a decoded buffer.
func TestInternParity(t *testing.T) {
	check := func(s string) bool {
		in, plain := Intern(s), NewString(s)
		if !in.Interned() || plain.Interned() {
			return false
		}
		if !in.Equal(plain) || !plain.Equal(in) || !in.Equal(in) {
			return false
		}
		if in.Hash() != plain.Hash() {
			return false
		}
		if in.HashInto(12345) != plain.HashInto(12345) {
			return false
		}
		// Interning is idempotent and canonical: same entry both times.
		again := Intern(s)
		return again.Equal(in) && again.Hash() == in.Hash() && again.Interned()
	}
	for _, s := range []string{"", "a", "n042", "hello world", "\x00\xff"} {
		if !check(s) {
			t.Errorf("intern parity broken for %q", s)
		}
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// TestInternDistinct guards the other direction: distinct contents stay
// unequal after interning.
func TestInternDistinct(t *testing.T) {
	if Intern("a").Equal(Intern("b")) {
		t.Error("distinct interned strings compare equal")
	}
	if Intern("a").Equal(NewString("ab")) {
		t.Error("interned \"a\" equals plain \"ab\"")
	}
}

// TestInternValueRecursive checks that InternValue reaches the functor and
// string arguments of compound terms without changing term identity.
func TestInternValueRecursive(t *testing.T) {
	v := NewCompound(NewString("f"), NewString("x"), NewInt(7),
		NewCompound(NewString("g"), NewString("y")))
	iv := InternValue(v)
	if !iv.Equal(v) || iv.Hash() != v.Hash() {
		t.Fatal("InternValue changed term identity")
	}
	if !iv.Functor().Interned() {
		t.Error("functor not interned")
	}
	if !iv.Args()[0].Interned() {
		t.Error("string argument not interned")
	}
	if !iv.Args()[2].Functor().Interned() {
		t.Error("nested functor not interned")
	}
	if !InternValue(NewInt(3)).Equal(NewInt(3)) {
		t.Error("non-string value changed by InternValue")
	}
}

// TestInternedEqualAllocs pins the fast path: comparing two interned copies
// of the same atom is pointer equality — no byte comparison, no allocation.
func TestInternedEqualAllocs(t *testing.T) {
	a, b := Intern("some-reasonably-long-atom-name"), Intern("some-reasonably-long-atom-name")
	if got := testing.AllocsPerRun(100, func() {
		if !a.Equal(b) {
			t.Fail()
		}
		_ = a.Hash()
	}); got != 0 {
		t.Errorf("interned Equal+Hash: %.1f allocs, want 0", got)
	}
}
