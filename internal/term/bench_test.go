package term

import "testing"

func BenchmarkValueHash(b *testing.B) {
	v := Atom("f", NewInt(42), NewString("hello"), Atom("g", NewFloat(1.5)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = v.Hash()
	}
}

func BenchmarkTupleHash(b *testing.B) {
	t := Tuple{NewInt(1), NewString("abc"), NewInt(99)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = t.Hash()
	}
}

func BenchmarkPatternMatch(b *testing.B) {
	p := CompAtom("f", Var(0), CompAtom("g", Var(1), Ground(NewInt(1))))
	v := Atom("f", NewString("a"), Atom("g", NewString("b"), NewInt(1)))
	regs := make([]Value, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Match(v, regs)
		regs[0] = Value{}
		regs[1] = Value{}
	}
}

func BenchmarkEncodeDecode(b *testing.B) {
	v := Atom("f", NewInt(42), NewString("hello"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = AppendValue(nil, v)
	}
}
