// Package ast defines the abstract syntax of Glue and NAIL! programs as
// described in the paper: modules (§6) containing EDB declarations, Glue
// procedures (§4) built from assignment statements (§3) and repeat loops,
// and NAIL! rules. Terms follow the HiLog scheme (§5): a predicate position
// may hold a variable or a compound term.
package ast

import (
	"strings"

	"gluenail/internal/term"
)

// Pos is a source position for diagnostics.
type Pos struct {
	Line, Col int
}

// Program is a parsed source file: one or more modules.
type Program struct {
	Modules []*Module
}

// Module is a compile-time code grouping (§6): a name, import/export lists,
// EDB declarations, and IDB predicate code — both Glue procedures and NAIL!
// rules may appear in the same module.
type Module struct {
	Name    string
	Exports []PredSig
	Imports []Import
	EDB     []PredSig
	Procs   []*Proc
	Rules   []*Rule
	Pos     Pos
}

// Import names predicates pulled in from another module.
type Import struct {
	From string
	Sigs []PredSig
	Pos  Pos
}

// PredSig declares a predicate's name and its bound:free arity split. EDB
// relations are declared all-free; procedure signatures split arguments at
// the colon.
type PredSig struct {
	Name  string
	Bound int
	Free  int
	Pos   Pos
}

// Arity returns the total number of arguments.
func (s PredSig) Arity() int { return s.Bound + s.Free }

// String renders "name(b1,..:f1,..)" as an arity shape "name/b:f".
func (s PredSig) String() string {
	var sb strings.Builder
	sb.WriteString(s.Name)
	sb.WriteByte('/')
	sb.WriteString(itoa(s.Bound))
	sb.WriteByte(':')
	sb.WriteString(itoa(s.Free))
	return sb.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// Proc is a Glue procedure (§4). Bound parameters arrive through the
// implicit `in` relation; assigning the `return` relation exits the
// procedure.
type Proc struct {
	Name        string
	BoundParams []string
	FreeParams  []string
	Locals      []PredSig
	Body        []Stmt
	Pos         Pos
}

// Sig returns the procedure's signature.
func (p *Proc) Sig() PredSig {
	return PredSig{Name: p.Name, Bound: len(p.BoundParams), Free: len(p.FreeParams), Pos: p.Pos}
}

// Rule is a NAIL! rule: Head :- Body. A fact rule has an empty body. Rule
// bodies are restricted to (possibly negated) atoms and comparisons.
type Rule struct {
	Head *AtomTerm
	Body []Goal
	Pos  Pos
}

// Stmt is a Glue statement: an assignment or a repeat loop.
type Stmt interface {
	stmtNode()
	P() Pos
}

// AssignOp selects among the four assignment operators (§3.1).
type AssignOp uint8

const (
	// OpAssign is ":=", the clearing assignment.
	OpAssign AssignOp = iota
	// OpInsert is "+=".
	OpInsert
	// OpDelete is "-=".
	OpDelete
	// OpModify is "+=[Z...]", update by key.
	OpModify
)

// String renders the operator's source spelling.
func (op AssignOp) String() string {
	switch op {
	case OpAssign:
		return ":="
	case OpInsert:
		return "+="
	case OpDelete:
		return "-="
	case OpModify:
		return "+=[...]"
	}
	return "?="
}

// Assign is a Glue assignment statement: head op body. Assigning to the
// special relation `return` carries the bound:free split of the head and
// implies an `in` subgoal (§4).
type Assign struct {
	Op        AssignOp
	Head      *AtomTerm
	IsReturn  bool
	HeadBound int      // bound-arg count when IsReturn
	Key       []string // key variables for OpModify
	Body      []Goal
	Pos       Pos
}

func (*Assign) stmtNode() {}

// P implements Stmt.
func (a *Assign) P() Pos { return a.Pos }

// Repeat is the repeat ... until loop (§4). Until is a disjunction of
// conjunctions: `until {confirmed(K) | empty(possible(K))}`.
type Repeat struct {
	Body  []Stmt
	Until [][]Goal
	Pos   Pos
}

func (*Repeat) stmtNode() {}

// P implements Stmt.
func (r *Repeat) P() Pos { return r.Pos }

// Goal is one subgoal in a statement or rule body.
type Goal interface {
	goalNode()
	P() Pos
}

// UpdateKind marks in-body EDB-updating subgoals: ++p(...) inserts and
// --p(...) deletes (the body update feature §9 mentions forcing pipeline
// breaks; Figure 1 uses --possible(It,D)).
type UpdateKind uint8

const (
	// UpdateNone marks an ordinary reading subgoal.
	UpdateNone UpdateKind = iota
	// UpdateInsert marks ++p(...).
	UpdateInsert
	// UpdateDelete marks --p(...).
	UpdateDelete
)

// AtomGoal is a predicate subgoal: an EDB relation, local relation, NAIL!
// predicate, Glue procedure, builtin, or HiLog predicate variable — the
// syntax is identical in all cases (§2).
type AtomGoal struct {
	Atom    *AtomTerm
	Negated bool
	Update  UpdateKind
	Pos     Pos
}

func (*AtomGoal) goalNode() {}

// P implements Goal.
func (g *AtomGoal) P() Pos { return g.Pos }

// CmpOp is a comparison operator.
type CmpOp uint8

// Comparison operators. CmpEq doubles as the binding/equation goal: when one
// side is an unbound variable it binds; otherwise it tests.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

// String renders the operator's source spelling.
func (op CmpOp) String() string {
	return [...]string{"=", "!=", "<", "<=", ">", ">="}[op]
}

// CmpGoal is a comparison or equation subgoal, e.g. X != Y or D = X*X+Y*Y.
type CmpGoal struct {
	Op   CmpOp
	L, R Expr
	Pos  Pos
}

func (*CmpGoal) goalNode() {}

// P implements Goal.
func (g *CmpGoal) P() Pos { return g.Pos }

// AggGoal is an aggregation subgoal V = op(T) (§3.3). The aggregator runs
// over the tuples of the preceding supplementary relation (respecting any
// group_by partitioning); V may be already bound, in which case the goal
// selects tuples whose aggregate equals V.
type AggGoal struct {
	Var string
	Op  string // min max mean sum product arbitrary std_dev count
	Arg Term
	Pos Pos
}

func (*AggGoal) goalNode() {}

// P implements Goal.
func (g *AggGoal) P() Pos { return g.Pos }

// GroupByGoal partitions the supplementary relation (§3.3.1); group_by
// subgoals cascade.
type GroupByGoal struct {
	Vars []string
	Pos  Pos
}

func (*GroupByGoal) goalNode() {}

// P implements Goal.
func (g *GroupByGoal) P() Pos { return g.Pos }

// UnchangedGoal is the builtin unchanged(P) (§4): true when predicate P has
// not changed since this syntactic occurrence last executed; always false
// the first time.
type UnchangedGoal struct {
	Atom *AtomTerm
	Pos  Pos
}

func (*UnchangedGoal) goalNode() {}

// P implements Goal.
func (g *UnchangedGoal) P() Pos { return g.Pos }

// EmptyGoal is the builtin empty(p(...)): true when the relation holds no
// tuples (Figure 1).
type EmptyGoal struct {
	Atom *AtomTerm
	Pos  Pos
}

func (*EmptyGoal) goalNode() {}

// P implements Goal.
func (g *EmptyGoal) P() Pos { return g.Pos }

// AtomTerm is a predicate application: Pred(Args...). Pred is a Term, not a
// string, because HiLog allows variables (S(X)) and compound names
// (students(ID)(N)) in predicate position.
type AtomTerm struct {
	Pred Term
	Args []Term
	Pos  Pos
}

// PredName returns the predicate's simple name when Pred is a plain atom,
// or "" otherwise.
func (a *AtomTerm) PredName() string {
	if c, ok := a.Pred.(*Const); ok && c.Val.Kind() == term.Str {
		return c.Val.Str()
	}
	return ""
}

// Arity returns the number of arguments.
func (a *AtomTerm) Arity() int { return len(a.Args) }

// Term is a source-level term: a constant, a variable, or a compound term
// whose functor is itself a term.
type Term interface {
	termNode()
	P() Pos
}

// Const is a ground constant.
type Const struct {
	Val term.Value
	Pos Pos
}

func (*Const) termNode() {}

// P implements Term.
func (t *Const) P() Pos { return t.Pos }

// VarTerm is a variable; Name "_" is the anonymous variable (each
// occurrence distinct).
type VarTerm struct {
	Name string
	Pos  Pos
}

func (*VarTerm) termNode() {}

// P implements Term.
func (t *VarTerm) P() Pos { return t.Pos }

// IsAnon reports whether the variable is the anonymous "_".
func (t *VarTerm) IsAnon() bool { return t.Name == "_" }

// CompTerm is a compound term f(args...) with a term-valued functor.
type CompTerm struct {
	Fn   Term
	Args []Term
	Pos  Pos
}

func (*CompTerm) termNode() {}

// P implements Term.
func (t *CompTerm) P() Pos { return t.Pos }

// Expr is an expression usable in comparison/equation goals: arithmetic,
// string builtins, or term construction.
type Expr interface {
	exprNode()
	P() Pos
}

// TermExpr wraps a Term used as an expression operand (variable, constant,
// or compound construction).
type TermExpr struct {
	T Term
}

func (*TermExpr) exprNode() {}

// P implements Expr.
func (e *TermExpr) P() Pos { return e.T.P() }

// BinOp is an arithmetic operator.
type BinOp uint8

// Arithmetic operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
)

// String renders the operator's source spelling.
func (op BinOp) String() string {
	return [...]string{"+", "-", "*", "/", "mod"}[op]
}

// BinExpr is a binary arithmetic expression.
type BinExpr struct {
	Op   BinOp
	L, R Expr
	Pos  Pos
}

func (*BinExpr) exprNode() {}

// P implements Expr.
func (e *BinExpr) P() Pos { return e.Pos }

// NegExpr is unary minus.
type NegExpr struct {
	X   Expr
	Pos Pos
}

func (*NegExpr) exprNode() {}

// P implements Expr.
func (e *NegExpr) P() Pos { return e.Pos }

// CallExpr is a builtin function application: the string operators the
// paper gives Glue (concatenation, length, substring) plus abs.
type CallExpr struct {
	Fn   string // strcat, strlen, substr, abs
	Args []Expr
	Pos  Pos
}

func (*CallExpr) exprNode() {}

// P implements Expr.
func (e *CallExpr) P() Pos { return e.Pos }

// AggOps lists the aggregate operators of §3.3.
var AggOps = map[string]bool{
	"min": true, "max": true, "mean": true, "sum": true,
	"product": true, "arbitrary": true, "std_dev": true, "count": true,
}

// ExprFns lists the builtin expression functions and their arities.
var ExprFns = map[string]int{
	"strcat": 2, "strlen": 1, "substr": 3, "abs": 1,
}
