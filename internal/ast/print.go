package ast

import (
	"fmt"
	"strings"
)

// Printing renders AST nodes back to Glue source syntax. cmd/nailc uses it
// to show the Glue code generated from NAIL! rules; tests use it for golden
// comparisons.

// FormatModule renders a whole module.
func FormatModule(m *Module) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s;\n", m.Name)
	if len(m.Exports) > 0 {
		sb.WriteString("export ")
		for i, s := range m.Exports {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeSig(&sb, s)
		}
		sb.WriteString(";\n")
	}
	for _, imp := range m.Imports {
		fmt.Fprintf(&sb, "from %s import ", imp.From)
		for i, s := range imp.Sigs {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeSig(&sb, s)
		}
		sb.WriteString(";\n")
	}
	if len(m.EDB) > 0 {
		sb.WriteString("edb ")
		for i, s := range m.EDB {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeEDBSig(&sb, s)
		}
		sb.WriteString(";\n")
	}
	for _, r := range m.Rules {
		sb.WriteString(FormatRule(r))
		sb.WriteByte('\n')
	}
	for _, p := range m.Procs {
		sb.WriteString(FormatProc(p))
	}
	sb.WriteString("end\n")
	return sb.String()
}

func writeSig(sb *strings.Builder, s PredSig) {
	sb.WriteString(s.Name)
	sb.WriteByte('(')
	for i := 0; i < s.Bound; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(sb, "B%d", i+1)
	}
	sb.WriteByte(':')
	for i := 0; i < s.Free; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(sb, "F%d", i+1)
	}
	sb.WriteByte(')')
}

func writeEDBSig(sb *strings.Builder, s PredSig) {
	sb.WriteString(s.Name)
	sb.WriteByte('(')
	for i := 0; i < s.Arity(); i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(sb, "A%d", i+1)
	}
	sb.WriteByte(')')
}

// FormatProc renders a Glue procedure.
func FormatProc(p *Proc) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "proc %s(%s:%s)\n", p.Name,
		strings.Join(p.BoundParams, ","), strings.Join(p.FreeParams, ","))
	if len(p.Locals) > 0 {
		sb.WriteString("rels ")
		for i, l := range p.Locals {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeEDBSig(&sb, l)
		}
		sb.WriteString(";\n")
	}
	for _, st := range p.Body {
		writeStmt(&sb, st, 1)
	}
	sb.WriteString("end\n")
	return sb.String()
}

func writeStmt(sb *strings.Builder, st Stmt, depth int) {
	ind := strings.Repeat("  ", depth)
	switch s := st.(type) {
	case *Assign:
		sb.WriteString(ind)
		sb.WriteString(FormatAssign(s))
		sb.WriteByte('\n')
	case *Repeat:
		sb.WriteString(ind)
		sb.WriteString("repeat\n")
		for _, inner := range s.Body {
			writeStmt(sb, inner, depth+1)
		}
		sb.WriteString(ind)
		sb.WriteString("until ")
		if len(s.Until) > 1 {
			sb.WriteString("{ ")
		}
		for i, alt := range s.Until {
			if i > 0 {
				sb.WriteString(" | ")
			}
			writeGoals(sb, alt)
		}
		if len(s.Until) > 1 {
			sb.WriteString(" }")
		}
		sb.WriteString(";\n")
	}
}

// FormatAssign renders one assignment statement.
func FormatAssign(a *Assign) string {
	var sb strings.Builder
	if a.IsReturn {
		sb.WriteString("return(")
		for i, t := range a.Head.Args {
			if i == a.HeadBound {
				sb.WriteByte(':')
			} else if i > 0 {
				sb.WriteByte(',')
			}
			writeTerm(&sb, t)
		}
		if a.HeadBound == len(a.Head.Args) {
			sb.WriteByte(':')
		}
		sb.WriteByte(')')
	} else {
		writeAtom(&sb, a.Head)
	}
	switch a.Op {
	case OpAssign:
		sb.WriteString(" := ")
	case OpInsert:
		sb.WriteString(" += ")
	case OpDelete:
		sb.WriteString(" -= ")
	case OpModify:
		sb.WriteString(" +=[")
		sb.WriteString(strings.Join(a.Key, ","))
		sb.WriteString("] ")
	}
	writeGoals(&sb, a.Body)
	sb.WriteByte('.')
	return sb.String()
}

// FormatRule renders one NAIL! rule.
func FormatRule(r *Rule) string {
	var sb strings.Builder
	writeAtom(&sb, r.Head)
	if len(r.Body) > 0 {
		sb.WriteString(" :- ")
		writeGoals(&sb, r.Body)
	}
	sb.WriteByte('.')
	return sb.String()
}

func writeGoals(sb *strings.Builder, goals []Goal) {
	for i, g := range goals {
		if i > 0 {
			sb.WriteString(" & ")
		}
		writeGoal(sb, g)
	}
}

func writeGoal(sb *strings.Builder, g Goal) {
	switch g := g.(type) {
	case *AtomGoal:
		if g.Negated {
			sb.WriteByte('!')
		}
		switch g.Update {
		case UpdateInsert:
			sb.WriteString("++")
		case UpdateDelete:
			sb.WriteString("--")
		}
		writeAtom(sb, g.Atom)
	case *CmpGoal:
		writeExpr(sb, g.L)
		sb.WriteByte(' ')
		sb.WriteString(g.Op.String())
		sb.WriteByte(' ')
		writeExpr(sb, g.R)
	case *AggGoal:
		fmt.Fprintf(sb, "%s = %s(", g.Var, g.Op)
		writeTerm(sb, g.Arg)
		sb.WriteByte(')')
	case *GroupByGoal:
		fmt.Fprintf(sb, "group_by(%s)", strings.Join(g.Vars, ","))
	case *UnchangedGoal:
		sb.WriteString("unchanged(")
		writeAtom(sb, g.Atom)
		sb.WriteByte(')')
	case *EmptyGoal:
		sb.WriteString("empty(")
		writeAtom(sb, g.Atom)
		sb.WriteByte(')')
	}
}

func writeAtom(sb *strings.Builder, a *AtomTerm) {
	writeTerm(sb, a.Pred)
	sb.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			sb.WriteByte(',')
		}
		writeTerm(sb, t)
	}
	sb.WriteByte(')')
}

func writeTerm(sb *strings.Builder, t Term) {
	switch t := t.(type) {
	case *Const:
		sb.WriteString(t.Val.String())
	case *VarTerm:
		sb.WriteString(t.Name)
	case *CompTerm:
		writeTerm(sb, t.Fn)
		sb.WriteByte('(')
		for i, a := range t.Args {
			if i > 0 {
				sb.WriteByte(',')
			}
			writeTerm(sb, a)
		}
		sb.WriteByte(')')
	}
}

func writeExpr(sb *strings.Builder, e Expr) {
	switch e := e.(type) {
	case *TermExpr:
		writeTerm(sb, e.T)
	case *BinExpr:
		sb.WriteByte('(')
		writeExpr(sb, e.L)
		sb.WriteByte(' ')
		sb.WriteString(e.Op.String())
		sb.WriteByte(' ')
		writeExpr(sb, e.R)
		sb.WriteByte(')')
	case *NegExpr:
		sb.WriteString("-(")
		writeExpr(sb, e.X)
		sb.WriteByte(')')
	case *CallExpr:
		sb.WriteString(e.Fn)
		sb.WriteByte('(')
		for i, a := range e.Args {
			if i > 0 {
				sb.WriteByte(',')
			}
			writeExpr(sb, a)
		}
		sb.WriteByte(')')
	}
}
