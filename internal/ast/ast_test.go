package ast

import (
	"strings"
	"testing"

	"gluenail/internal/term"
)

func TestPredSigString(t *testing.T) {
	s := PredSig{Name: "tc", Bound: 1, Free: 2}
	if s.String() != "tc/1:2" {
		t.Errorf("String = %q", s.String())
	}
	if s.Arity() != 3 {
		t.Errorf("Arity = %d", s.Arity())
	}
	z := PredSig{Name: "p"}
	if z.String() != "p/0:0" {
		t.Errorf("zero sig = %q", z.String())
	}
	big := PredSig{Name: "q", Bound: 12, Free: 34}
	if big.String() != "q/12:34" {
		t.Errorf("big sig = %q", big.String())
	}
}

func TestOpStrings(t *testing.T) {
	ops := map[AssignOp]string{
		OpAssign: ":=", OpInsert: "+=", OpDelete: "-=", OpModify: "+=[...]",
		AssignOp(9): "?=",
	}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), want)
		}
	}
	cmps := map[CmpOp]string{
		CmpEq: "=", CmpNe: "!=", CmpLt: "<", CmpLe: "<=", CmpGt: ">", CmpGe: ">=",
	}
	for op, want := range cmps {
		if op.String() != want {
			t.Errorf("cmp %d = %q, want %q", op, op.String(), want)
		}
	}
	bins := map[BinOp]string{
		OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "mod",
	}
	for op, want := range bins {
		if op.String() != want {
			t.Errorf("bin %d = %q, want %q", op, op.String(), want)
		}
	}
}

func TestPredName(t *testing.T) {
	a := &AtomTerm{Pred: &Const{Val: term.NewString("foo")}, Args: []Term{&VarTerm{Name: "X"}}}
	if a.PredName() != "foo" || a.Arity() != 1 {
		t.Errorf("PredName/Arity = %q/%d", a.PredName(), a.Arity())
	}
	v := &AtomTerm{Pred: &VarTerm{Name: "S"}}
	if v.PredName() != "" {
		t.Errorf("var pred name = %q", v.PredName())
	}
	n := &AtomTerm{Pred: &Const{Val: term.NewInt(3)}}
	if n.PredName() != "" {
		t.Errorf("int pred name = %q", n.PredName())
	}
}

func TestVarTermIsAnon(t *testing.T) {
	if !(&VarTerm{Name: "_"}).IsAnon() {
		t.Error("_ should be anonymous")
	}
	if (&VarTerm{Name: "_X"}).IsAnon() {
		t.Error("_X is a named variable")
	}
}

func TestProcSig(t *testing.T) {
	p := &Proc{Name: "tc", BoundParams: []string{"X"}, FreeParams: []string{"Y", "Z"}}
	sig := p.Sig()
	if sig.Name != "tc" || sig.Bound != 1 || sig.Free != 2 {
		t.Errorf("sig = %+v", sig)
	}
}

func TestFormatModuleShapes(t *testing.T) {
	m := &Module{
		Name:    "m",
		Exports: []PredSig{{Name: "p", Bound: 1, Free: 1}},
		Imports: []Import{{From: "other", Sigs: []PredSig{{Name: "q", Free: 2}}}},
		EDB:     []PredSig{{Name: "e", Free: 2}},
		Rules: []*Rule{{
			Head: &AtomTerm{Pred: &Const{Val: term.NewString("p")},
				Args: []Term{&VarTerm{Name: "X"}}},
			Body: []Goal{&AtomGoal{Atom: &AtomTerm{
				Pred: &Const{Val: term.NewString("e")},
				Args: []Term{&VarTerm{Name: "X"}, &VarTerm{Name: "_"}},
			}}},
		}},
	}
	text := FormatModule(m)
	for _, want := range []string{
		"module m;", "export p(B1:F1);", "from other import q(:F1,F2);",
		"edb e(A1,A2);", "p(X) :- e(X,_).", "end",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("FormatModule missing %q:\n%s", want, text)
		}
	}
}

func TestFormatGoalKinds(t *testing.T) {
	x := &VarTerm{Name: "X"}
	goals := []Goal{
		&AtomGoal{Atom: &AtomTerm{Pred: &Const{Val: term.NewString("p")}, Args: []Term{x}}, Negated: true},
		&AtomGoal{Atom: &AtomTerm{Pred: &Const{Val: term.NewString("q")}, Args: []Term{x}}, Update: UpdateInsert},
		&AtomGoal{Atom: &AtomTerm{Pred: &Const{Val: term.NewString("r")}, Args: []Term{x}}, Update: UpdateDelete},
		&CmpGoal{Op: CmpLt, L: &TermExpr{T: x}, R: &TermExpr{T: &Const{Val: term.NewInt(3)}}},
		&AggGoal{Var: "M", Op: "min", Arg: x},
		&GroupByGoal{Vars: []string{"X", "Y"}},
		&UnchangedGoal{Atom: &AtomTerm{Pred: &Const{Val: term.NewString("p")}, Args: []Term{x}}},
		&EmptyGoal{Atom: &AtomTerm{Pred: &Const{Val: term.NewString("p")}, Args: []Term{x}}},
	}
	a := &Assign{
		Op:   OpModify,
		Key:  []string{"X"},
		Head: &AtomTerm{Pred: &Const{Val: term.NewString("h")}, Args: []Term{x}},
		Body: goals,
	}
	text := FormatAssign(a)
	for _, want := range []string{
		"!p(X)", "++q(X)", "--r(X)", "X < 3", "M = min(X)",
		"group_by(X,Y)", "unchanged(p(X))", "empty(p(X))", "+=[X]",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("FormatAssign missing %q:\n%s", want, text)
		}
	}
}

func TestFormatExprs(t *testing.T) {
	x := &TermExpr{T: &VarTerm{Name: "X"}}
	e := &BinExpr{Op: OpMul,
		L: &NegExpr{X: x},
		R: &CallExpr{Fn: "strlen", Args: []Expr{&TermExpr{T: &Const{Val: term.NewString("ab")}}}},
	}
	a := &Assign{
		Op:   OpAssign,
		Head: &AtomTerm{Pred: &Const{Val: term.NewString("h")}, Args: []Term{&VarTerm{Name: "Y"}}},
		Body: []Goal{&CmpGoal{Op: CmpEq, L: &TermExpr{T: &VarTerm{Name: "Y"}}, R: e}},
	}
	text := FormatAssign(a)
	if !strings.Contains(text, "(-(X) * strlen(ab))") {
		t.Errorf("expr format = %s", text)
	}
}

func TestFormatReturnHead(t *testing.T) {
	a := &Assign{
		Op:        OpAssign,
		IsReturn:  true,
		HeadBound: 1,
		Head: &AtomTerm{Pred: &Const{Val: term.NewString("return")},
			Args: []Term{&VarTerm{Name: "X"}, &VarTerm{Name: "Y"}}},
		Body: []Goal{&AtomGoal{Atom: &AtomTerm{
			Pred: &Const{Val: term.NewString("p")},
			Args: []Term{&VarTerm{Name: "X"}, &VarTerm{Name: "Y"}}}}},
	}
	if got := FormatAssign(a); !strings.Contains(got, "return(X:Y)") {
		t.Errorf("return head = %s", got)
	}
	// All-bound return.
	a2 := &Assign{
		Op: OpAssign, IsReturn: true, HeadBound: 1,
		Head: &AtomTerm{Pred: &Const{Val: term.NewString("return")},
			Args: []Term{&VarTerm{Name: "X"}}},
		Body: []Goal{&AtomGoal{Atom: &AtomTerm{
			Pred: &Const{Val: term.NewString("p")},
			Args: []Term{&VarTerm{Name: "X"}}}}},
	}
	if got := FormatAssign(a2); !strings.Contains(got, "return(X:)") {
		t.Errorf("bound-only return head = %s", got)
	}
}
