package lexer

import (
	"strings"
	"testing"
)

func kinds(t *testing.T, src string) []Kind {
	t.Helper()
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatalf("Tokenize(%q): %v", src, err)
	}
	out := make([]Kind, len(toks))
	for i, tok := range toks {
		out[i] = tok.Kind
	}
	return out
}

func expectKinds(t *testing.T, src string, want ...Kind) {
	t.Helper()
	got := kinds(t, src)
	if len(got) != len(want) {
		t.Fatalf("Tokenize(%q) = %v, want %v", src, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Tokenize(%q)[%d] = %v, want %v", src, i, got[i], want[i])
		}
	}
}

func TestIdentifiersAndVariables(t *testing.T) {
	toks, err := Tokenize("foo Bar _baz _ x9 aB_c")
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		kind Kind
		text string
	}{
		{Ident, "foo"}, {Var, "Bar"}, {Var, "_baz"}, {Var, "_"},
		{Ident, "x9"}, {Ident, "aB_c"},
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Errorf("token %d = %v %q, want %v %q", i, toks[i].Kind, toks[i].Text, w.kind, w.text)
		}
	}
}

func TestNumbers(t *testing.T) {
	toks, err := Tokenize("42 1.5 0 3.25e2 1e3 7.")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != Int || toks[0].I != 42 {
		t.Errorf("42: %v %d", toks[0].Kind, toks[0].I)
	}
	if toks[1].Kind != Float || toks[1].F != 1.5 {
		t.Errorf("1.5: %v %g", toks[1].Kind, toks[1].F)
	}
	if toks[2].Kind != Int || toks[2].I != 0 {
		t.Errorf("0: %v", toks[2])
	}
	if toks[3].Kind != Float || toks[3].F != 325 {
		t.Errorf("3.25e2: %v %g", toks[3].Kind, toks[3].F)
	}
	if toks[4].Kind != Float || toks[4].F != 1000 {
		t.Errorf("1e3: %v %g", toks[4].Kind, toks[4].F)
	}
	// "7." lexes as Int 7 then Dot — the statement terminator case.
	if toks[5].Kind != Int || toks[5].I != 7 || toks[6].Kind != Dot {
		t.Errorf("7.: %v %v", toks[5], toks[6])
	}
}

func TestIntDotDigitIsFloat(t *testing.T) {
	// matrix(X,X, 1.0) from the paper: 1.0 must be one float token.
	toks, err := Tokenize("1.0")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 1 || toks[0].Kind != Float || toks[0].F != 1.0 {
		t.Errorf("1.0 lexed as %v", toks)
	}
}

func TestStrings(t *testing.T) {
	toks, err := Tokenize(`'hello' "world" 'it\'s' 'a\nb' ''`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"hello", "world", "it's", "a\nb", ""}
	for i, w := range want {
		if toks[i].Kind != Str || toks[i].Text != w {
			t.Errorf("string %d = %q, want %q", i, toks[i].Text, w)
		}
	}
}

func TestOperators(t *testing.T) {
	expectKinds(t, ":= += -= ++ -- :- = != < <= > >= + - * / : . & ! | ; ,",
		Assign, PlusEq, MinusEq, PlusPlus, MinusMinus, Implies,
		Eq, Ne, Lt, Le, Gt, Ge, Plus, Minus, Star, Slash,
		Colon, Dot, Amp, Bang, Bar, Semi, Comma)
	expectKinds(t, "( ) { } [ ]", LParen, RParen, LBrace, RBrace, LBracket, RBracket)
}

func TestOperatorMaximalMunch(t *testing.T) {
	// "+=[" must lex as PlusEq LBracket (the modify assignment).
	expectKinds(t, "+=[X]", PlusEq, LBracket, Var, RBracket)
	// "X!=Y" vs "!p".
	expectKinds(t, "X!=Y", Var, Ne, Var)
	expectKinds(t, "!p(X)", Bang, Ident, LParen, Var, RParen)
	// "--possible" from Figure 1.
	expectKinds(t, "--possible(It,D)", MinusMinus, Ident, LParen, Var, Comma, Var, RParen)
}

func TestComments(t *testing.T) {
	src := `
% a line comment
foo /* block
comment */ bar % trailing
`
	expectKinds(t, src, Ident, Ident)
}

func TestAssignmentStatement(t *testing.T) {
	expectKinds(t, "r(X,Y) += s(X,W) & t(f(W,X),Y).",
		Ident, LParen, Var, Comma, Var, RParen, PlusEq,
		Ident, LParen, Var, Comma, Var, RParen, Amp,
		Ident, LParen, Ident, LParen, Var, Comma, Var, RParen, Comma, Var, RParen, Dot)
}

func TestPositions(t *testing.T) {
	toks, err := Tokenize("a\n  bc")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("token a at %d:%d", toks[0].Line, toks[0].Col)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("token bc at %d:%d", toks[1].Line, toks[1].Col)
	}
}

func TestErrors(t *testing.T) {
	cases := []string{
		"'unterminated",
		"'bad \\q escape'",
		"/* never closed",
		"@",
		"'trailing backslash\\",
	}
	for _, src := range cases {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q) should fail", src)
		} else if !strings.Contains(err.Error(), ":") {
			t.Errorf("error %q should carry a position", err)
		}
	}
}

func TestTokenString(t *testing.T) {
	toks, _ := Tokenize("foo X 'a b' 42 2.5 :=")
	want := []string{`"foo"`, `"X"`, "'a b'", "42", "2.5", "':='"}
	for i, w := range want {
		if got := toks[i].String(); got != w {
			t.Errorf("Token.String[%d] = %q, want %q", i, got, w)
		}
	}
	if EOF.String() != "end of input" {
		t.Errorf("EOF.String = %q", EOF.String())
	}
	if Kind(200).String() != "Kind(200)" {
		t.Errorf("unknown kind String = %q", Kind(200).String())
	}
}

func TestEOFAfterWhitespace(t *testing.T) {
	lx := New("  % only a comment\n")
	tok, err := lx.Next()
	if err != nil || tok.Kind != EOF {
		t.Errorf("want EOF, got %v err %v", tok, err)
	}
}
