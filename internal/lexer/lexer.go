// Package lexer tokenizes Glue and NAIL! source text. The concrete syntax
// follows the paper: Prolog-flavoured terms (lowercase atoms, uppercase
// variables), '&' conjunction, the four assignment operators, ':-' for NAIL!
// rules, '%' line comments and '/* */' block comments.
package lexer

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind classifies a token.
type Kind uint8

// Token kinds.
const (
	EOF Kind = iota
	Ident
	Var // uppercase or '_' start
	Int
	Float
	Str // quoted atom/string

	LParen
	RParen
	LBrace
	RBrace
	LBracket
	RBracket
	Comma
	Semi
	Dot
	Colon
	Amp
	Bang
	Bar

	Assign     // :=
	PlusEq     // +=
	MinusEq    // -=
	PlusPlus   // ++
	MinusMinus // --
	Implies    // :-
	Eq         // =
	Ne         // !=
	Lt         // <
	Le         // <=
	Gt         // >
	Ge         // >=
	Plus       // +
	Minus      // -
	Star       // *
	Slash      // /
)

var kindNames = map[Kind]string{
	EOF: "end of input", Ident: "identifier", Var: "variable",
	Int: "integer", Float: "float", Str: "string",
	LParen: "'('", RParen: "')'", LBrace: "'{'", RBrace: "'}'",
	LBracket: "'['", RBracket: "']'", Comma: "','", Semi: "';'",
	Dot: "'.'", Colon: "':'", Amp: "'&'", Bang: "'!'", Bar: "'|'",
	Assign: "':='", PlusEq: "'+='", MinusEq: "'-='",
	PlusPlus: "'++'", MinusMinus: "'--'", Implies: "':-'",
	Eq: "'='", Ne: "'!='", Lt: "'<'", Le: "'<='", Gt: "'>'", Ge: "'>='",
	Plus: "'+'", Minus: "'-'", Star: "'*'", Slash: "'/'",
}

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Token is one lexical unit with its source position.
type Token struct {
	Kind Kind
	Text string  // identifier/variable name or string contents
	I    int64   // Int payload
	F    float64 // Float payload
	Line int
	Col  int
}

// String renders the token for error messages.
func (t Token) String() string {
	switch t.Kind {
	case Ident, Var:
		return fmt.Sprintf("%q", t.Text)
	case Str:
		return fmt.Sprintf("'%s'", t.Text)
	case Int:
		return strconv.FormatInt(t.I, 10)
	case Float:
		return strconv.FormatFloat(t.F, 'g', -1, 64)
	}
	return t.Kind.String()
}

// Error is a lexical error with position.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

// Lexer scans source text into tokens.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Tokenize scans the entire input, returning all tokens (excluding EOF).
func Tokenize(src string) ([]Token, error) {
	lx := New(src)
	var out []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		if t.Kind == EOF {
			return out, nil
		}
		out = append(out, t)
	}
}

func (l *Lexer) errf(format string, args ...any) error {
	return &Error{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *Lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '%':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			startLine, startCol := l.line, l.col
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return &Error{Line: startLine, Col: startCol, Msg: "unterminated block comment"}
			}
		default:
			return nil
		}
	}
	return nil
}

func isLower(c byte) bool { return c >= 'a' && c <= 'z' }
func isUpper(c byte) bool { return c >= 'A' && c <= 'Z' }
func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isIdentCont(c byte) bool {
	return isLower(c) || isUpper(c) || isDigit(c) || c == '_'
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	tok := Token{Line: l.line, Col: l.col}
	if l.pos >= len(l.src) {
		tok.Kind = EOF
		return tok, nil
	}
	c := l.peek()
	switch {
	case isLower(c):
		tok.Kind = Ident
		tok.Text = l.scanIdent()
		return tok, nil
	case isUpper(c) || c == '_':
		tok.Kind = Var
		tok.Text = l.scanIdent()
		return tok, nil
	case isDigit(c):
		return l.scanNumber(tok)
	case c == '\'' || c == '"':
		return l.scanString(tok)
	}
	l.advance()
	switch c {
	case '(':
		tok.Kind = LParen
	case ')':
		tok.Kind = RParen
	case '{':
		tok.Kind = LBrace
	case '}':
		tok.Kind = RBrace
	case '[':
		tok.Kind = LBracket
	case ']':
		tok.Kind = RBracket
	case ',':
		tok.Kind = Comma
	case ';':
		tok.Kind = Semi
	case '.':
		tok.Kind = Dot
	case '&':
		tok.Kind = Amp
	case '|':
		tok.Kind = Bar
	case '*':
		tok.Kind = Star
	case '/':
		tok.Kind = Slash
	case '=':
		tok.Kind = Eq
	case ':':
		switch l.peek() {
		case '=':
			l.advance()
			tok.Kind = Assign
		case '-':
			l.advance()
			tok.Kind = Implies
		default:
			tok.Kind = Colon
		}
	case '+':
		switch l.peek() {
		case '=':
			l.advance()
			tok.Kind = PlusEq
		case '+':
			l.advance()
			tok.Kind = PlusPlus
		default:
			tok.Kind = Plus
		}
	case '-':
		switch l.peek() {
		case '=':
			l.advance()
			tok.Kind = MinusEq
		case '-':
			l.advance()
			tok.Kind = MinusMinus
		default:
			tok.Kind = Minus
		}
	case '!':
		if l.peek() == '=' {
			l.advance()
			tok.Kind = Ne
		} else {
			tok.Kind = Bang
		}
	case '<':
		if l.peek() == '=' {
			l.advance()
			tok.Kind = Le
		} else {
			tok.Kind = Lt
		}
	case '>':
		if l.peek() == '=' {
			l.advance()
			tok.Kind = Ge
		} else {
			tok.Kind = Gt
		}
	default:
		return Token{}, &Error{Line: tok.Line, Col: tok.Col,
			Msg: fmt.Sprintf("unexpected character %q", c)}
	}
	return tok, nil
}

func (l *Lexer) scanIdent() string {
	start := l.pos
	for l.pos < len(l.src) && isIdentCont(l.peek()) {
		l.advance()
	}
	return l.src[start:l.pos]
}

func (l *Lexer) scanNumber(tok Token) (Token, error) {
	start := l.pos
	for l.pos < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	isFloat := false
	// A '.' is part of the number only when followed by a digit, so the
	// statement terminator after an integer still lexes as Dot.
	if l.peek() == '.' && isDigit(l.peek2()) {
		isFloat = true
		l.advance()
		for l.pos < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	if c := l.peek(); c == 'e' || c == 'E' {
		save := l.pos
		mark := *l
		l.advance()
		if l.peek() == '+' || l.peek() == '-' {
			l.advance()
		}
		if isDigit(l.peek()) {
			isFloat = true
			for l.pos < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		} else {
			*l = mark
			l.pos = save
		}
	}
	text := l.src[start:l.pos]
	if isFloat {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Token{}, &Error{Line: tok.Line, Col: tok.Col, Msg: "bad float literal " + text}
		}
		tok.Kind = Float
		tok.F = f
		return tok, nil
	}
	i, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return Token{}, &Error{Line: tok.Line, Col: tok.Col, Msg: "bad integer literal " + text}
	}
	tok.Kind = Int
	tok.I = i
	return tok, nil
}

func (l *Lexer) scanString(tok Token) (Token, error) {
	quote := l.advance()
	var sb strings.Builder
	for {
		if l.pos >= len(l.src) {
			return Token{}, &Error{Line: tok.Line, Col: tok.Col, Msg: "unterminated string"}
		}
		c := l.advance()
		switch {
		case c == quote:
			tok.Kind = Str
			tok.Text = sb.String()
			return tok, nil
		case c == '\\':
			if l.pos >= len(l.src) {
				return Token{}, &Error{Line: tok.Line, Col: tok.Col, Msg: "unterminated string"}
			}
			e := l.advance()
			switch e {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case '\\', '\'', '"':
				sb.WriteByte(e)
			default:
				return Token{}, l.errf("bad escape \\%c", e)
			}
		default:
			sb.WriteByte(c)
		}
	}
}
