package gluenail

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"gluenail/internal/storage"
	"gluenail/internal/term"
)

// CSV interchange for EDB relations: a pragmatic addition to §10's disk
// persistence, so data can come from and go to other tools. Fields are
// typed by content: integers, then floats, then strings; a field wrapped
// in single quotes is always a string ('42' loads as the string "42").

// LoadCSV reads CSV records from r into the named relation, creating it on
// first use. Every record must have the same width. Files past the bulk
// threshold take the engine's direct bulk path when the backend has one
// (the disk engine builds runs straight from the batch, bypassing the
// WAL); smaller files insert row at a time.
func (s *System) LoadCSV(relation string, r io.Reader) error {
	if s.durErr != nil {
		return s.durErr
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	arity := -1
	var rows []term.Tuple
	n := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("gluenail: csv %s record %d: %w", relation, n+1, err)
		}
		n++
		if arity == -1 {
			arity = len(rec)
		}
		if len(rec) != arity {
			return fmt.Errorf("gluenail: csv %s record %d has %d fields, want %d",
				relation, n, len(rec), arity)
		}
		tup := make(term.Tuple, arity)
		for i, f := range rec {
			tup[i] = csvValue(f)
		}
		rows = append(rows, tup)
	}
	if arity == -1 {
		return s.commit()
	}
	if err := s.ingest(term.Intern(relation), arity, rows); err != nil {
		return err
	}
	return s.commit()
}

// LoadCSVFile reads a CSV file into the named relation.
func (s *System) LoadCSVFile(relation, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.LoadCSV(relation, f)
}

// csvValue types a CSV field: int, float, else string. Single quotes force
// a string and are stripped.
func csvValue(f string) term.Value {
	if len(f) >= 2 && f[0] == '\'' && f[len(f)-1] == '\'' {
		return term.Intern(f[1 : len(f)-1])
	}
	if i, err := strconv.ParseInt(f, 10, 64); err == nil {
		return term.NewInt(i)
	}
	if x, err := strconv.ParseFloat(f, 64); err == nil {
		return term.NewFloat(x)
	}
	return term.Intern(f)
}

// SaveCSV writes the named relation's tuples to w as CSV, sorted, one field
// per column. Compound values render in source syntax; strings that would
// re-load as numbers are single-quoted so a round trip preserves types.
func (s *System) SaveCSV(relation string, arity int, w io.Writer) error {
	rel, ok := s.edb.Get(term.Intern(relation), arity)
	if !ok {
		return fmt.Errorf("gluenail: no relation %s/%d", relation, arity)
	}
	cw := csv.NewWriter(w)
	for _, t := range storage.Sorted(rel) {
		rec := make([]string, len(t))
		for i, v := range t {
			rec[i] = csvField(v)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveCSVFile writes the relation to a CSV file.
func (s *System) SaveCSVFile(relation string, arity int, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.SaveCSV(relation, arity, f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func csvField(v Value) string {
	switch v.Kind() {
	case term.Int:
		return strconv.FormatInt(v.Int(), 10)
	case term.Float:
		s := strconv.FormatFloat(v.Float(), 'g', -1, 64)
		// Keep integral floats loading back as floats. Only values whose
		// rendering is an integer literal need the suffix: NaN and the
		// infinities already round-trip through ParseFloat, and "NaN.0"
		// would reload as a string.
		if _, err := strconv.ParseInt(s, 10, 64); err == nil {
			s += ".0"
		}
		return s
	case term.Str:
		s := v.Str()
		// Quote strings that would re-load as numbers (or as quoted
		// strings) to keep the round trip type-faithful.
		if _, err := strconv.ParseFloat(s, 64); err == nil ||
			(len(s) >= 2 && strings.HasPrefix(s, "'") && strings.HasSuffix(s, "'")) {
			return "'" + s + "'"
		}
		return s
	}
	return v.String()
}
