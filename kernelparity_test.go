package gluenail

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// Kernel-parity differential tests: the vectorized batch kernels (on by
// default), the scalar tuple-at-a-time kernels behind WithBatchKernels
// (false), the hash-first kernels (interned atoms, cached row hashes,
// open-addressing dedup/group/probe tables), and the legacy string-key
// kernels retained behind WithStringKeyKernels must produce byte-identical
// results on every program at every worker count.

// TestHiLogDispatchKernelParity is the regression test for the cached head
// dispatch key: a dispatch-heavy HiLog program — computed head names
// creating one relation per department, predicate-variable reads
// dispatching back into them, and a set-valued catalog — must resolve the
// same relations and rows under both kernel families and any parallelism.
func TestHiLogDispatchKernelParity(t *testing.T) {
	const program = `
edb emp(Dept, Name), dept_set(Dept, S);
headcount(D, N) :- dept_set(D, S) & S(E) & group_by(D, S) & N = count(E).
proc build(:)
  team(D)(N) := emp(D, N).
  dept_set(D, team(D)) := emp(D, _).
  return(:) := emp(_,_).
end
`
	var emps [][]any
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		emps = append(emps, []any{
			fmt.Sprintf("dept%02d", rng.Intn(17)),
			fmt.Sprintf("emp%03d", i),
		})
	}
	queries := []string{
		"dept_set(dept03, S) & S(N)",
		"dept_set(D, S) & S(N)",
		"headcount(D, N)",
	}
	var ref []string
	var refName string
	for name, opts := range map[string][]Option{
		"batch":             nil,
		"scalar":            {WithBatchKernels(false)},
		"string-key":        {WithStringKeyKernels()},
		"scalar+string-key": {WithBatchKernels(false), WithStringKeyKernels()},
	} {
		for _, workers := range []int{1, 4} {
			all := append([]Option{WithParallelism(workers), WithParallelThreshold(8)}, opts...)
			sys := New(all...)
			if err := sys.Load(program); err != nil {
				t.Fatal(err)
			}
			sys.Assert("emp", emps...)
			if _, err := sys.Call("main", "build"); err != nil {
				t.Fatalf("%s/%dw: build: %v", name, workers, err)
			}
			var got []string
			for _, q := range queries {
				res, err := sys.Query(q)
				if err != nil {
					t.Fatalf("%s/%dw: query %s: %v", name, workers, q, err)
				}
				got = append(got, rowsKey(res))
			}
			if ref == nil {
				ref, refName = got, name
				for i, k := range ref {
					if k == "" {
						t.Fatalf("query %q returned no rows; nothing was exercised", queries[i])
					}
				}
				continue
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("%s/%dw: query %q differs from %s:\n%s\nvs\n%s",
						name, workers, queries[i], refName, got[i], ref[i])
				}
			}
		}
	}
}

// TestQuickKernelParity sweeps random programs through both kernel
// families at 1–8 workers: every configuration must agree row for row.
func TestQuickKernelParity(t *testing.T) {
	kernels := map[string][]Option{
		"batch":             nil,
		"scalar":            {WithBatchKernels(false)},
		"string-key":        {WithStringKeyKernels()},
		"scalar+string-key": {WithBatchKernels(false), WithStringKeyKernels()},
	}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nDerived := 1 + rng.Intn(3)
		program := genProgram(rng, nDerived)
		e0, e1 := genFacts(rng, 5, 6+rng.Intn(8))
		target := fmt.Sprintf("d%d", nDerived-1)
		queries := []string{
			fmt.Sprintf("%s(X, Y)", target),
			fmt.Sprintf("%s(%d, Y)", target, rng.Intn(5)),
		}
		var ref []string
		var refName string
		for name, opts := range kernels {
			for _, workers := range []int{1, 2, 4, 8} {
				all := append([]Option{WithParallelism(workers), WithParallelThreshold(2)}, opts...)
				sys := New(all...)
				if err := sys.Load(program); err != nil {
					t.Fatalf("seed %d: generated program invalid: %v\n%s", seed, err, program)
				}
				sys.Assert("e0", e0...)
				sys.Assert("e1", e1...)
				var got []string
				for _, q := range queries {
					res, err := sys.Query(q)
					if err != nil {
						t.Fatalf("seed %d (%s/%dw): query %s: %v\n%s",
							seed, name, workers, q, err, program)
					}
					got = append(got, rowsKey(res))
				}
				if ref == nil {
					ref, refName = got, name
					continue
				}
				for i := range ref {
					if got[i] != ref[i] {
						t.Errorf("seed %d: %s/%dw disagrees with %s on %q:\n%s\nvs\n%s",
							seed, name, workers, refName, queries[i], got[i], ref[i])
						return false
					}
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if testing.Short() {
		cfg.MaxCount = 5
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
