package gluenail

import (
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestExamples builds and runs every example program, checking key lines of
// their output. This keeps the examples honest as the engine evolves.
func TestExamples(t *testing.T) {
	if testing.Short() {
		t.Skip("examples spawn go run; skipped with -short")
	}
	cases := []struct {
		dir  string
		want []string
	}{
		{"quickstart", []string{
			"tc(1, X) via NAIL! rules:",
			"X = 5",
			"4 reaches 5",
			"EDB saved to quickstart.edb",
		}},
		{"cad", []string{
			"[screen] highlighting circle3",
			"This one?",
			"[screen] dehighlighting circle3",
			"selected element: line17",
		}},
		{"registrar", []string{
			"cs99: instructor=smith room=mjh460a ta_set=tas(cs99) student_set=students(cs99)",
			"green",
			"jones assists cs99",
			"students(cs99) == students(cs245) extensionally: false",
			"students(cs99) == students(cs99) extensionally: true",
		}},
		{"flights", []string{
			"destinations reachable from sfo: 5",
			"qf: 7417 miles",
			"cdg: 4 hops",
		}},
		{"warehouse", []string{
			"shipped orders:",
			"[4]",
			"rejected orders:",
			"widget: 0 left",
			"widget stock after reload: 0",
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.dir, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", "./examples/"+c.dir).CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", c.dir, err, out)
			}
			text := string(out)
			for _, want := range c.want {
				if !strings.Contains(text, want) {
					t.Errorf("example %s output missing %q:\n%s", c.dir, want, text)
				}
			}
		})
	}
}

// TestExamplesParallelDeterminism runs every example once sequentially and
// once with an 8-worker pool (forced onto the parallel paths by a tiny
// fan-out threshold, both via the environment) and requires byte-identical
// output. This is the end-to-end guarantee behind the Parallelism knob:
// worker count must never change what a program prints.
func TestExamplesParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("examples spawn go run; skipped with -short")
	}
	dirs := []string{"quickstart", "cad", "registrar", "flights", "warehouse"}
	for _, dir := range dirs {
		dir := dir
		t.Run(dir, func(t *testing.T) {
			t.Parallel()
			run := func(workers string) string {
				cmd := exec.Command("go", "run", "./examples/"+dir)
				cmd.Env = append(os.Environ(),
					"GLUENAIL_WORKERS="+workers,
					"GLUENAIL_PAR_THRESHOLD=2",
				)
				out, err := cmd.CombinedOutput()
				if err != nil {
					t.Fatalf("example %s (workers=%s) failed: %v\n%s", dir, workers, err, out)
				}
				return string(out)
			}
			seq := run("1")
			par := run("8")
			if seq != par {
				t.Errorf("example %s output differs between 1 and 8 workers:\n--- workers=1 ---\n%s--- workers=8 ---\n%s",
					dir, seq, par)
			}
		})
	}
}
