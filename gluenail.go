// Package gluenail is a deductive database system reproducing Phipps, Derr
// & Ross, "Glue-Nail: A Deductive Database System" (SIGMOD 1991). It
// couples two tightly knit languages — the declarative NAIL! rule language
// and the procedural Glue language — over a main-memory relational back
// end:
//
//   - NAIL! rules define IDB predicates, compiled on demand into Glue
//     procedures (semi-naive evaluation, magic sets for bound calls,
//     stratified negation);
//   - Glue procedures perform set-at-a-time computation with assignment
//     statements, repeat/until loops, aggregation, EDB updates, and I/O;
//   - HiLog-style higher-order syntax gives both languages set-valued
//     attributes (predicate names as values) with first-order semantics;
//   - the back end stores duplicate-free ground relations with adaptive
//     run-time index creation and disk persistence for the EDB.
//
// A System loads modules, answers queries, calls procedures, and asserts
// EDB facts:
//
//	sys := gluenail.New()
//	sys.Load(`
//	    edb edge(X,Y);
//	    tc(X,Y) :- edge(X,Y).
//	    tc(X,Z) :- tc(X,Y) & edge(Y,Z).
//	`)
//	sys.Assert("edge", []any{1, 2}, []any{2, 3})
//	res, _ := sys.Query("tc(1, X)")
package gluenail

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"gluenail/internal/ast"
	"gluenail/internal/modsys"
	"gluenail/internal/parser"
	"gluenail/internal/plan"
	"gluenail/internal/storage"
	"gluenail/internal/storage/disk"
	"gluenail/internal/storage/fsio"
	_ "gluenail/internal/storage/mem" // registers the "mem" backend
	"gluenail/internal/term"
	"gluenail/internal/vm"
	"gluenail/internal/wal"
)

// Value is a ground Glue-Nail term: an integer, float, string/atom, or
// HiLog compound term.
type Value = term.Value

// Int builds an integer value.
func Int(i int64) Value { return term.NewInt(i) }

// Float builds a float value.
func Float(f float64) Value { return term.NewFloat(f) }

// Str builds a string/atom value.
func Str(s string) Value { return term.Intern(s) }

// Compound builds a compound term with an atom functor, e.g.
// Compound("students", Str("cs99")) is the set name students(cs99).
func Compound(functor string, args ...Value) Value {
	return term.Atom(functor, args...)
}

// Config captures the tunable behaviours; each corresponds to a design
// decision in the paper and is exercised by an experiment.
type config struct {
	out          io.Writer
	in           io.Reader
	trace        io.Writer
	layered      bool
	indexPolicy  storage.IndexPolicy
	materialized bool
	loopLimit    int
	parallelism  int
	parThreshold int
	greedyOrder  bool
	stringKeys   bool
	planCache    bool
	batchKernels bool
	planOpts     plan.Options
	durDir       string
	fsync        FsyncMode
	ckptBytes    int64
	budget       Budget
	backend      string
	spillDir     string
	spillRows    int
	cacheBlocks  int
	noCompress   bool
	fs           fsio.FS
	scrubEvery   time.Duration
}

// Option configures a System.
type Option func(*config)

// WithOutput directs write/nl output.
func WithOutput(w io.Writer) Option { return func(c *config) { c.out = w } }

// WithInput supplies read_line input.
func WithInput(r io.Reader) Option { return func(c *config) { c.in = r } }

// WithLayeredBackend runs every relation — including the short-lived
// temporaries of procedure frames — on the simulated DBMS-layered store
// (write-ahead logging, latching, catalog probes): the E8 baseline.
func WithLayeredBackend() Option { return func(c *config) { c.layered = true } }

// WithBackend selects the EDB storage engine by registered name: "mem"
// (the default tailored main-memory store) or "disk" (the index-organized
// disk engine — relations live in immutable on-disk runs plus an in-memory
// memtable, with a block cache and background compaction, so the EDB may
// exceed RAM). Combined with Open/WithDurability the disk engine keeps its
// runs under <dir>/store and composes with the write-ahead log: commits
// append to the WAL as usual and checkpoints flush the memtables to runs
// instead of serializing the whole store. Without durability a disk-backed
// system uses a private temporary directory removed on Close.
func WithBackend(name string) Option { return func(c *config) { c.backend = name } }

// WithSpill enables out-of-core execution: procedure-frame scratch tables
// (semi-naive deltas, supplementary relations, locals) live on an
// ephemeral disk store under dir and spill to disk runs once a relation
// holds budgetRows in memory (0 = a default threshold), instead of
// aborting with ErrMemoryBudget when a Budget.MaxRelRows cardinality
// budget trips. With both configured, the effective in-memory threshold is
// the smaller of budgetRows and MaxRelRows. Stale spill directories left
// by crashed processes are swept on startup; dir must not coincide with or
// nest the durability directory.
func WithSpill(dir string, budgetRows int) Option {
	return func(c *config) { c.spillDir = dir; c.spillRows = budgetRows }
}

// WithBlockCache caps the disk engine's decoded-block cache (entries, not
// bytes; a block holds up to 256 decoded rows). 0 selects the engine
// default; ignored by the main-memory backend.
func WithBlockCache(blocks int) Option {
	return func(c *config) { c.cacheBlocks = blocks }
}

// WithBlockCompression toggles the disk engine's packed block encoding
// (on by default). Off stores run blocks raw; reads handle both forms, so
// the setting may change between opens of the same store.
func WithBlockCompression(on bool) Option {
	return func(c *config) { c.noCompress = !on }
}

// FS is the filesystem seam every persistent artifact (WAL segments,
// snapshots, disk-engine runs, manifest, intern file, spill runs) is
// written through; see the storage/fsio package. The default is the real
// filesystem; fault-injection tests swap in a scripted implementation.
type FS = fsio.FS

// WithFS routes all of the system's file I/O through fs (nil keeps the
// real filesystem). The seam covers the write-ahead log, checkpoints, the
// disk engine's runs and manifest, and spill scratch stores — so a single
// injected fault surface exercises every persistence path.
func WithFS(fs FS) Option { return func(c *config) { c.fs = fs } }

// WithScrubInterval starts a background scrubber on a disk-backed EDB:
// every interval it verifies one stored run's checksums at low priority
// and reports findings to stderr, so silent corruption is detected while
// the data is still redundant enough to heal (see System.ScrubEDB).
// Zero (the default) disables background scrubbing; ignored by the
// main-memory backend.
func WithScrubInterval(d time.Duration) Option {
	return func(c *config) { c.scrubEvery = d }
}

// WithIndexPolicy overrides the adaptive index policy (E4 baselines).
func WithIndexPolicy(p storage.IndexPolicy) Option {
	return func(c *config) { c.indexPolicy = p }
}

// WithMaterializedExecution selects the fully materialized execution
// strategy instead of the pipelined one (E2 baseline).
func WithMaterializedExecution() Option {
	return func(c *config) { c.materialized = true }
}

// WithoutDupElimination disables duplicate elimination at pipeline breaks
// (E3 baseline).
func WithoutDupElimination() Option {
	return func(c *config) { c.planOpts.NoDedup = true }
}

// WithoutReordering disables non-fixed subgoal reordering entirely: the
// compiler keeps the textual subgoal order and the run-time planner does
// not reorder either (the full ablation baseline).
func WithoutReordering() Option {
	return func(c *config) { c.planOpts.NoReorder = true }
}

// WithGreedyOrdering executes the compiler's static greedy subgoal order,
// disabling the statistics-driven physical reordering that is on by
// default — the middle ablation point between textual order
// (WithoutReordering) and the cost-based planner.
func WithGreedyOrdering() Option {
	return func(c *config) { c.greedyOrder = true }
}

// WithStringKeyKernels runs duplicate elimination, aggregation grouping,
// and call-barrier probing on the legacy string-key kernels (every row
// encoded into a freshly allocated map key) instead of the hash-first
// open-addressing kernels — the E13 ablation baseline. Results are
// byte-identical either way.
func WithStringKeyKernels() Option { return func(c *config) { c.stringKeys = true } }

// WithPlanCache enables or disables the prepared-plan cache (on by
// default): physical plans are cached per statement, keyed by the
// referenced relations' statistics epochs and the statement's bound-
// variable masks, and invalidated when executor selectivity feedback
// drifts past a threshold. Repeated statements skip the greedy reorderer
// and its op cloning entirely. A cached plan is never wrong — any
// runnable op order yields the same results — so this is a pure
// performance ablation (the E15 baseline axis).
func WithPlanCache(on bool) Option { return func(c *config) { c.planCache = on } }

// WithBatchKernels enables or disables the vectorized batch execution
// kernels (on by default): pipeline segments run op-at-a-time over
// column-major register vectors with selection-vector filters and
// column-wise probe emission, instead of tuple-at-a-time interpretation.
// Results are byte-identical to the scalar kernels at every worker count
// (the second E15 baseline axis).
func WithBatchKernels(on bool) Option { return func(c *config) { c.batchKernels = on } }

// WithoutMagicSets disables magic-set rewriting of bound NAIL! calls (E9
// baseline).
func WithoutMagicSets() Option {
	return func(c *config) { c.planOpts.NoMagic = true }
}

// WithNaiveEvaluation replaces semi-naive recursion with naive
// re-derivation (E5 baseline).
func WithNaiveEvaluation() Option {
	return func(c *config) { c.planOpts.Naive = true }
}

// WithoutDispatchNarrowing disables compile-time narrowing of HiLog
// predicate-variable dispatch (E6 baseline).
func WithoutDispatchNarrowing() Option {
	return func(c *config) { c.planOpts.NoNarrow = true }
}

// WithLoopLimit bounds repeat-loop iterations; 0 means unlimited. The
// default is 1,000,000.
func WithLoopLimit(n int) Option { return func(c *config) { c.loopLimit = n } }

// Execution-governor errors, re-exported for errors.Is classification.
// Every governed failure is a *GovernorError wrapping exactly one of
// these sentinels and carrying the active procedure and statement label.
var (
	ErrCanceled     = vm.ErrCanceled     // the call's context was canceled
	ErrTimeout      = vm.ErrTimeout      // the wall-clock budget expired
	ErrMemoryBudget = vm.ErrMemoryBudget // a tuple or cardinality budget tripped
	ErrDepthLimit   = vm.ErrDepthLimit   // procedure calls nested too deep
	ErrLoopLimit    = vm.ErrLoopLimit    // a repeat loop ran too long
	ErrPanic        = vm.ErrPanic        // an internal panic was contained
	ErrPoisoned     = vm.ErrPoisoned     // the system was poisoned by a panic
)

// Storage-fault sentinels, re-exported for errors.Is classification. A
// failed disk write degrades the EDB to read-only (queries keep serving
// from the durable base; writes fail with ErrDiskFault until the store is
// reopened); detected checksum damage fails the touching operation with
// ErrCorrupt rather than returning a wrong answer. Neither poisons the
// system.
var (
	ErrDiskFault = storage.ErrDiskFault // an I/O operation failed; store is read-only degraded
	ErrCorrupt   = storage.ErrCorrupt   // stored bytes failed checksum verification
)

// GovernorError is the typed failure raised by the execution governor;
// see the vm package for field documentation.
type GovernorError = vm.GovernorError

// DefaultMaxDepth is the procedure-call recursion limit applied when no
// budget overrides it.
const DefaultMaxDepth = vm.DefaultMaxDepth

// Budget bounds the resources one governed call may consume. The zero
// value of each field keeps that dimension at its default; a negative
// MaxDepth or MaxLoopIters lifts the corresponding default limit
// entirely.
type Budget struct {
	// Timeout is the wall-clock budget per Query/Call (0 = none): the
	// governor cancels the call's context after this duration and the
	// call fails with ErrTimeout at the next cooperative check.
	Timeout time.Duration
	// MaxTuples bounds the total tuples inserted (EDB + scratch) during
	// one call (0 = unlimited), enforced from the storage layer's insert
	// counters; exceeding it fails with ErrMemoryBudget.
	MaxTuples int64
	// MaxRelRows bounds the cardinality of any single relation the
	// program writes (0 = unlimited); exceeding it fails with
	// ErrMemoryBudget naming the relation.
	MaxRelRows int
	// MaxDepth bounds procedure-call nesting (0 = DefaultMaxDepth,
	// negative = unlimited); exceeding it fails with ErrDepthLimit.
	MaxDepth int
	// MaxLoopIters bounds repeat-loop iterations (0 = keep the
	// WithLoopLimit setting, negative = unlimited); exceeding it fails
	// with ErrLoopLimit.
	MaxLoopIters int
}

// WithBudget installs resource budgets enforced by the execution
// governor. Budgeted calls fail with a typed *GovernorError instead of
// hanging or exhausting memory; the system stays usable afterwards.
func WithBudget(b Budget) Option { return func(c *config) { c.budget = b } }

// WithTimeout sets the wall-clock budget per Query/Call (shorthand for
// WithBudget(Budget{Timeout: d})); an expired call fails with ErrTimeout
// at a clean statement boundary — committed statements stay durable, the
// interrupted statement's effects are discarded from the WAL.
func WithTimeout(d time.Duration) Option {
	return func(c *config) { c.budget.Timeout = d }
}

// WithParallelism sets the worker count for intra-segment morsel
// parallelism: 0 (the default) uses GOMAXPROCS, 1 forces fully sequential
// execution. Results are byte-identical at every worker count; only the
// wall-clock changes.
func WithParallelism(n int) Option { return func(c *config) { c.parallelism = n } }

// WithParallelThreshold sets the minimum projected supplementary-row count
// before a segment fans out to the worker pool (0 = default 128). Mostly a
// testing knob: lowering it forces small workloads onto the parallel path.
func WithParallelThreshold(rows int) Option {
	return func(c *config) { c.parThreshold = rows }
}

// WithTrace streams one line per statement execution and procedure call to
// w, narrating the supplementary-relation evaluation of §3.2.
func WithTrace(w io.Writer) Option { return func(c *config) { c.trace = w } }

// FsyncMode selects when write-ahead-log commits are forced to disk; see
// the Fsync* constants.
type FsyncMode = wal.FsyncMode

// Fsync modes for WithFsync.
const (
	// FsyncBatch (the default) group-commits: the log syncs once a batch
	// of bytes or commits has accumulated, and always on Close and
	// Checkpoint. A crash loses at most the last unsynced batch of
	// statements, never consistency.
	FsyncBatch = wal.FsyncBatch
	// FsyncAlways syncs after every top-level statement.
	FsyncAlways = wal.FsyncAlways
	// FsyncNever leaves flushing to the OS; Close still syncs.
	FsyncNever = wal.FsyncNever
)

// WithDurability stores the EDB durably under dir. Committed EDB deltas
// are appended to a checksummed write-ahead log at top-level statement
// boundaries; snapshots checkpoint the log when it grows past the
// threshold (or on Checkpoint); re-opening the directory recovers the
// EDB to a statement-boundary-consistent state after a crash. Prefer
// Open, which surfaces recovery errors immediately — with New, a
// recovery failure is reported by every subsequent operation.
func WithDurability(dir string) Option { return func(c *config) { c.durDir = dir } }

// WithFsync selects the WAL fsync mode (default FsyncBatch); only
// meaningful together with WithDurability.
func WithFsync(mode FsyncMode) Option { return func(c *config) { c.fsync = mode } }

// WithCheckpointThreshold sets the WAL size in bytes past which a
// snapshot checkpoint is taken automatically at the next commit point
// (0 = default 8 MiB; negative disables automatic checkpoints).
func WithCheckpointThreshold(bytes int64) Option {
	return func(c *config) { c.ckptBytes = bytes }
}

// System is a Glue-Nail database instance: loaded modules, an EDB store,
// and an executor.
//
// A System is safe for concurrent use: every public operation serializes
// on an internal mutex, so callers from multiple goroutines interleave at
// operation granularity (the single-writer model — writes and live-view
// queries take turns). Concurrent *reads* that must not wait on writers
// go through Snapshot, which captures an immutable statement-boundary
// view and executes on a private machine outside the lock.
type System struct {
	// mu serializes all public operations on the live system. Snapshot
	// sessions hold it only while capturing or compiling, never while
	// executing.
	mu       sync.Mutex
	cfg      config
	registry *vm.Registry
	edb      storage.Store
	// eng is edb's storage.Backend face — the multi-version engine
	// (main-memory or disk) behind the EDB; nil only for the layered
	// baseline. Snapshots, CSN advancement, and Close need it.
	eng      storage.Backend
	temp     storage.Store
	sources  []string
	compiled bool
	machine  *vm.Machine
	compiler *plan.Compiler
	lp       *modsys.Program
	// queries caches compiled query procedures by module and goal text;
	// reset whenever the program is recompiled.
	queries map[string]compiledQuery
	// gen counts recompilations; Prepared handles carry the generation
	// they were compiled under and transparently re-prepare when it moves.
	gen uint64
	// view is the immutable Program copy snapshot machines execute
	// against; rebuilt (under mu) whenever compilation adds procedures,
	// so CompileQuery's map mutations never race a snapshot execution.
	view      *plan.Program
	viewDirty bool
	// Durability state: wlog/recorder are non-nil when the EDB is backed
	// by a write-ahead log; durErr records a failed recovery (every
	// operation then reports it).
	wlog     *wal.Log
	recorder *wal.Recorder
	durErr   error
}

type compiledQuery struct {
	id   string
	vars []string
}

// New creates an empty system. The GLUENAIL_WORKERS and
// GLUENAIL_PAR_THRESHOLD environment variables, when set to integers,
// provide the default worker count and fan-out threshold for intra-segment
// parallelism; WithParallelism and WithParallelThreshold override them.
func New(opts ...Option) *System {
	cfg := config{
		out:          os.Stdout,
		in:           strings.NewReader(""),
		indexPolicy:  storage.IndexAdaptive,
		loopLimit:    1_000_000,
		planCache:    true,
		batchKernels: true,
	}
	if s := os.Getenv("GLUENAIL_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil {
			cfg.parallelism = n
		}
	}
	if s := os.Getenv("GLUENAIL_PAR_THRESHOLD"); s != "" {
		if n, err := strconv.Atoi(s); err == nil {
			cfg.parThreshold = n
		}
	}
	for _, o := range opts {
		o(&cfg)
	}
	s := &System{
		cfg:      cfg,
		registry: vm.NewRegistry(),
	}
	// EDB store: the configured backend. Dir-backed engines live under
	// <durDir>/store so the WAL (segments directly in durDir) and the
	// engine's runs never collide; without durability they get a private
	// temporary directory removed on Close.
	if cfg.layered {
		s.edb = storage.NewLayeredStore(cfg.indexPolicy)
	} else {
		name := cfg.backend
		if name == "" {
			name = "mem"
		}
		var dir string
		if cfg.durDir != "" && name != "mem" {
			dir = filepath.Join(cfg.durDir, "store")
		}
		st, err := storage.OpenBackend(name, storage.BackendConfig{
			Dir:           dir,
			Policy:        cfg.indexPolicy,
			CacheBlocks:   cfg.cacheBlocks,
			NoCompress:    cfg.noCompress,
			FS:            cfg.fs,
			ScrubInterval: cfg.scrubEvery,
		})
		if err != nil {
			s.durErr = fmt.Errorf("gluenail: opening %s storage backend: %w", name, err)
			st = storage.NewMemStore(cfg.indexPolicy)
		}
		s.edb = st
	}
	s.eng, _ = s.edb.(storage.Backend)
	// Scratch store: in-memory unless WithSpill routes frame-local scratch
	// tables through an out-of-core spill store.
	temp, err := newScratchStore(&cfg)
	if err != nil {
		if s.durErr == nil {
			s.durErr = fmt.Errorf("gluenail: opening spill store in %s: %w", cfg.spillDir, err)
		}
		temp = storage.NewMemStore(cfg.indexPolicy)
	}
	s.temp = temp
	if s.durErr == nil && cfg.durDir != "" {
		log, err := wal.Open(cfg.durDir, s.edb, wal.Options{
			Fsync:           cfg.fsync,
			CheckpointBytes: cfg.ckptBytes,
			FS:              cfg.fs,
		})
		if err != nil {
			s.durErr = fmt.Errorf("gluenail: opening durable EDB in %s: %w", cfg.durDir, err)
		} else {
			s.wlog = log
			s.recorder = wal.NewRecorder()
			s.edb.SetJournal(s.recorder)
		}
	}
	return s
}

// newScratchStore builds one scratch (temporary-relation) store under the
// configured spill policy: the live machine and every snapshot session get
// their own. With WithSpill, scratch tables live on an ephemeral disk
// store whose in-memory threshold is the smaller of the spill budget and
// the Budget.MaxRelRows cardinality budget, so the governor's relation
// check charges resident rows and out-of-core iteration replaces the
// ErrMemoryBudget abort.
func newScratchStore(cfg *config) (storage.Store, error) {
	if cfg.layered {
		return storage.NewLayeredStore(cfg.indexPolicy), nil
	}
	if cfg.spillDir == "" {
		return storage.NewMemStore(cfg.indexPolicy), nil
	}
	if err := disk.CheckDirOverlap(cfg.durDir, cfg.spillDir); err != nil {
		return nil, err
	}
	budget := cfg.spillRows
	if mrr := cfg.budget.MaxRelRows; mrr > 0 && (budget <= 0 || mrr < budget) {
		budget = mrr
	}
	return disk.NewScratchFS(cfg.fs, cfg.spillDir, budget, cfg.indexPolicy, nil)
}

// Open creates a System whose EDB is durably persisted under dir (see
// WithDurability), recovering any existing state first. The returned
// system must be Closed to release the log; a system abandoned without
// Close loses at most the unsynced fsync batch, never consistency.
func Open(dir string, opts ...Option) (*System, error) {
	s := New(append([]Option{WithDurability(dir)}, opts...)...)
	if s.durErr != nil {
		return nil, s.durErr
	}
	return s, nil
}

// commit seals the EDB deltas captured since the previous commit point
// into one atomic WAL batch (checkpointing first if the log has grown
// past the threshold), then advances the commit sequence number so
// snapshots taken from here on see the statement's effects. Without
// durability only the CSN advances; mutations stamped before an advance
// belong to the CSN it publishes.
func (s *System) commit() error {
	if s.wlog != nil {
		if ops := s.recorder.Take(); len(ops) > 0 {
			if err := s.wlog.Commit(ops); err != nil {
				return err
			}
			if s.wlog.ShouldCheckpoint() {
				if err := s.wlog.Checkpoint(s.edb); err != nil {
					return err
				}
			}
		}
	}
	if s.eng != nil {
		s.eng.AdvanceCSN()
	}
	return nil
}

// Checkpoint serializes the EDB into a fresh snapshot and rotates the
// write-ahead log. It may only be called between statements (never from
// inside a Register callback). Without durability it reports an error.
func (s *System) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.durErr != nil {
		return s.durErr
	}
	if s.wlog == nil {
		return fmt.Errorf("gluenail: Checkpoint requires durability (use Open or WithDurability)")
	}
	if err := s.commit(); err != nil {
		return err
	}
	return s.wlog.Checkpoint(s.edb)
}

// Close commits any pending deltas, syncs, closes the write-ahead log,
// and shuts down the storage engines (a disk-backed EDB stops its
// compactor and releases its run files; a spill store removes its scratch
// directory). A main-memory system without durability closes as a no-op.
// The system must not be used after Close.
func (s *System) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	switch {
	case s.durErr != nil:
		err = s.durErr
	case s.wlog != nil:
		err = s.commit()
		if cerr := s.wlog.Close(); err == nil {
			err = cerr
		}
		s.edb.SetJournal(nil)
		s.wlog, s.recorder = nil, nil
	}
	if s.eng != nil {
		if cerr := s.eng.Close(); err == nil {
			err = cerr
		}
	}
	if c, ok := s.temp.(io.Closer); ok {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Register adds a foreign (Go) procedure callable from Glue as a subgoal:
// bound/free give the argument split, fixed marks side-effecting
// procedures whose position in a statement must be preserved. fn receives
// the distinct input tuples and returns full (bound+free) result tuples.
// Procedures must be registered before the code referencing them is
// compiled (i.e., before the first query or call after Load).
func (s *System) Register(name string, bound, free int, fixed bool,
	fn func(in [][]Value) ([][]Value, error)) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.registry.Register(name, plan.BuiltinSig{Bound: bound, Free: free, Fixed: fixed},
		func(_ *vm.Machine, in []term.Tuple) ([]term.Tuple, error) {
			rows := make([][]Value, len(in))
			for i, t := range in {
				rows[i] = []Value(t)
			}
			out, err := fn(rows)
			if err != nil {
				return nil, err
			}
			res := make([]term.Tuple, len(out))
			for i, r := range out {
				res[i] = term.Tuple(r)
			}
			return res, nil
		})
	if err != nil {
		return err
	}
	s.compiled = false
	return nil
}

// Load adds Glue/NAIL! source (one or more modules, or a bare script that
// becomes the implicit main module). Compilation is deferred to first use.
func (s *System) Load(src string) error {
	// Parse eagerly for early syntax errors.
	if _, err := parser.Parse(src); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sources = append(s.sources, src)
	s.compiled = false
	return nil
}

// LoadContext is Load under the caller's context: an already-cancelled or
// expired context fails with a *GovernorError before any source is
// accepted, so batch loaders can share one deadline across loads and
// queries.
func (s *System) LoadContext(ctx context.Context, src string) error {
	if err := ctxGovErr(ctx); err != nil {
		return err
	}
	return s.Load(src)
}

// execCtx layers the configured wall-clock budget onto the caller's
// context; the returned cancel must run when the call finishes.
func (s *System) execCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if s.cfg.budget.Timeout > 0 {
		return context.WithTimeout(ctx, s.cfg.budget.Timeout)
	}
	return ctx, func() {}
}

// guardStorage converts a storage-fault panic escaping a direct EDB
// operation (Assert, Retract, Relation, LoadEDB — paths that touch the
// store without going through the VM) into its typed error. Partial WAL
// deltas from the failed statement are discarded so the durable log still
// ends at the previous statement boundary; any other panic is re-raised.
func (s *System) guardStorage(err *error) {
	r := recover()
	if r == nil {
		return
	}
	perr, ok := r.(error)
	if !ok || (!errors.Is(perr, storage.ErrDiskFault) && !errors.Is(perr, storage.ErrCorrupt)) {
		panic(r)
	}
	if s.recorder != nil {
		s.recorder.Discard()
	}
	if *err == nil {
		*err = perr
	}
}

// ctxGovErr converts a context failure into the governor's typed error.
func ctxGovErr(ctx context.Context) error {
	switch err := ctx.Err(); {
	case err == nil:
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		return &GovernorError{Limit: ErrTimeout}
	default:
		return &GovernorError{Limit: ErrCanceled}
	}
}

// LoadFile loads source from a file.
func (s *System) LoadFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return s.Load(string(data))
}

// ensure links and compiles all loaded sources.
func (s *System) ensure() (rerr error) {
	defer s.guardStorage(&rerr)
	if s.durErr != nil {
		return s.durErr
	}
	if s.compiled {
		return nil
	}
	prog := &ast.Program{}
	var mainMod *ast.Module
	for _, src := range s.sources {
		p, err := parser.Parse(src)
		if err != nil {
			return err
		}
		for _, m := range p.Modules {
			for _, fact := range modsys.ExtractEDBFacts(m) {
				s.edb.Ensure(term.Intern(fact.Name), len(fact.Tuple)).Insert(fact.Tuple)
			}
			if m.Name == "main" {
				if mainMod == nil {
					mainMod = m
					prog.Modules = append(prog.Modules, m)
				} else {
					mainMod.EDB = append(mainMod.EDB, m.EDB...)
					mainMod.Exports = append(mainMod.Exports, m.Exports...)
					mainMod.Imports = append(mainMod.Imports, m.Imports...)
					mainMod.Procs = append(mainMod.Procs, m.Procs...)
					mainMod.Rules = append(mainMod.Rules, m.Rules...)
				}
				continue
			}
			prog.Modules = append(prog.Modules, m)
		}
	}
	if len(prog.Modules) == 0 {
		prog.Modules = append(prog.Modules, &ast.Module{Name: "main"})
	}
	// Module-declared EDB facts are in the store now; make them durable
	// before compilation can fail (matching the in-memory semantics,
	// where they persist regardless of compile errors).
	if err := s.commit(); err != nil {
		return err
	}
	lp, err := modsys.LinkWith(prog, modsys.Options{Known: s.registry.Has})
	if err != nil {
		return err
	}
	opts := s.cfg.planOpts
	opts.Builtin = s.registry.Sig
	compiler := plan.NewCompiler(lp, opts)
	if err := compiler.CompileAll(); err != nil {
		return err
	}
	s.lp = lp
	s.compiler = compiler
	s.machine = vm.New(compiler.Program(), s.edb, s.temp, s.registry)
	s.tuneMachine(s.machine, s.cfg.budget)
	s.machine.Out = s.cfg.out
	s.machine.In = bufio.NewReader(s.cfg.in)
	s.machine.Trace = s.cfg.trace
	// Commit runs at every top-level statement boundary: it seals WAL
	// deltas (when durable) and always advances the commit sequence
	// number, publishing the statement to future snapshots.
	s.machine.Commit = s.commit
	if s.recorder != nil {
		// A failed or cancelled top-level statement discards its partial
		// WAL deltas, so the next commit seals only whole statements and
		// recovery stays a statement-boundary prefix.
		s.machine.Abort = s.recorder.Discard
	}
	s.queries = make(map[string]compiledQuery)
	s.gen++
	s.viewDirty = true
	s.compiled = true
	return nil
}

// tuneMachine applies the configured execution knobs and the budget b to a
// machine: shared by the live machine (the configured Budget) and every
// snapshot session's private machine (the session's own budget).
func (s *System) tuneMachine(m *vm.Machine, b Budget) {
	m.Materialized = s.cfg.materialized
	m.LoopLimit = s.cfg.loopLimit
	switch {
	case b.MaxLoopIters > 0:
		m.LoopLimit = b.MaxLoopIters
	case b.MaxLoopIters < 0:
		m.LoopLimit = 0
	}
	switch {
	case b.MaxDepth > 0:
		m.MaxDepth = b.MaxDepth
	case b.MaxDepth < 0:
		m.MaxDepth = 0
	default:
		m.MaxDepth = vm.DefaultMaxDepth
	}
	m.MaxTuples = b.MaxTuples
	m.MaxRelRows = b.MaxRelRows
	m.Parallelism = s.cfg.parallelism
	m.ParallelThreshold = s.cfg.parThreshold
	m.StringKeyKernels = s.cfg.stringKeys
	m.PlanCache = s.cfg.planCache
	m.BatchKernels = s.cfg.batchKernels
	// Textual and greedy orderings are ablations: both must execute the
	// compiled op order, so either disables run-time reordering.
	m.StatsOrdering = !s.cfg.greedyOrder && !s.cfg.planOpts.NoReorder
}

// progView returns the immutable Program copy snapshot machines execute
// against, rebuilding it when compilation has added procedures since the
// last view. Called with mu held; the returned map is never mutated
// afterwards (CompileQuery mutates the compiler's own map, which marks
// the view dirty through prepareQuery/ensure).
func (s *System) progView() *plan.Program {
	if s.view == nil || s.viewDirty {
		src := s.compiler.Program().Procs
		procs := make(map[string]*plan.Proc, len(src))
		for id, p := range src {
			procs[id] = p
		}
		s.view = &plan.Program{Procs: procs}
		s.viewDirty = false
	}
	return s.view
}

// toValue converts a Go value to a term value.
func toValue(v any) (Value, error) {
	switch v := v.(type) {
	case Value:
		return v, nil
	case int:
		return term.NewInt(int64(v)), nil
	case int64:
		return term.NewInt(v), nil
	case float64:
		return term.NewFloat(v), nil
	case string:
		return term.Intern(v), nil
	}
	return Value{}, fmt.Errorf("gluenail: cannot convert %T to a value", v)
}

func toTuple(row []any) (term.Tuple, error) {
	t := make(term.Tuple, len(row))
	for i, v := range row {
		val, err := toValue(v)
		if err != nil {
			return nil, err
		}
		t[i] = val
	}
	return t, nil
}

// Assert inserts facts into an EDB relation, creating it on first use. The
// relation name may be a simple name ("edge") or a Value for HiLog set
// relations. If the program is already compiled and declares the relation
// with a different arity, the mismatch is reported instead of silently
// creating a parallel relation.
func (s *System) Assert(relation any, rows ...[]any) (rerr error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.guardStorage(&rerr)
	if s.durErr != nil {
		return s.durErr
	}
	name, err := toValue(relation)
	if err != nil {
		return err
	}
	// Convert and arity-check up front, grouping by arity: a batch large
	// enough takes the engine's direct bulk path instead of row-at-a-time
	// journaled inserts.
	groups := make(map[int][]term.Tuple)
	var arities []int
	for _, row := range rows {
		t, err := toTuple(row)
		if err != nil {
			return err
		}
		if s.lp != nil && name.Kind() == term.Str {
			if sym := s.lp.Resolve("main", name.Str()); sym != nil &&
				sym.Class == modsys.ClassEDB && sym.Arity() != len(t) {
				return fmt.Errorf("gluenail: %s is declared with arity %d, asserted tuple has %d",
					name.Str(), sym.Arity(), len(t))
			}
		}
		if _, ok := groups[len(t)]; !ok {
			arities = append(arities, len(t))
		}
		groups[len(t)] = append(groups[len(t)], t)
	}
	for _, arity := range arities {
		if err := s.ingest(name, arity, groups[arity]); err != nil {
			return err
		}
	}
	return s.commit()
}

// ingest adds one relation's batch: through the engine's direct bulk path
// (WAL-bypassing, see bulkLoad) when the batch is large enough, otherwise
// row at a time through the journal.
func (s *System) ingest(name term.Value, arity int, batch []term.Tuple) error {
	if len(batch) >= storage.BulkThreshold {
		if bulk, ok := s.edb.(storage.BulkLoader); ok {
			return s.bulkLoad(bulk, name, arity, batch)
		}
	}
	rel := s.edb.Ensure(name, arity)
	for _, t := range batch {
		rel.Insert(t)
	}
	return nil
}

// bulkLoad runs one batch through storage.BulkLoader under the WAL fence:
// pending deltas are committed and the log rotated empty first (replay
// must never re-apply an older tail over a base that already contains the
// batch), the engine ingests the rows directly, and a closing checkpoint
// makes the engine's base — now the batch's only home — durable. A crash
// between the fences reverts to the pre-statement base: the batch's runs
// are swept as orphans on reopen, so recovery still yields a statement-
// boundary prefix. Without a WAL there is nothing to fence.
func (s *System) bulkLoad(bulk storage.BulkLoader, name term.Value, arity int, batch []term.Tuple) error {
	if s.wlog != nil {
		if err := s.commit(); err != nil {
			return err
		}
		if err := s.wlog.Checkpoint(s.edb); err != nil {
			return err
		}
	}
	if _, err := bulk.BulkLoad(name, arity, batch); err != nil {
		return err
	}
	if s.wlog != nil {
		if err := s.wlog.Checkpoint(s.edb); err != nil {
			return err
		}
	}
	return nil
}

// Retract removes facts from an EDB relation.
func (s *System) Retract(relation any, rows ...[]any) (rerr error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.guardStorage(&rerr)
	if s.durErr != nil {
		return s.durErr
	}
	name, err := toValue(relation)
	if err != nil {
		return err
	}
	for _, row := range rows {
		t, err := toTuple(row)
		if err != nil {
			return err
		}
		if rel, ok := s.edb.Get(name, len(t)); ok {
			rel.Delete(t)
		}
	}
	return s.commit()
}

// Relation returns the current sorted contents of an EDB relation.
func (s *System) Relation(relation any, arity int) (_ [][]Value, rerr error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.guardStorage(&rerr)
	name, err := toValue(relation)
	if err != nil {
		return nil, err
	}
	rel, ok := s.edb.Get(name, arity)
	if !ok {
		return nil, nil
	}
	tuples := storage.Sorted(rel)
	out := make([][]Value, len(tuples))
	for i, t := range tuples {
		out[i] = []Value(t)
	}
	return out, nil
}

// Result holds query answers: one row per solution, columns named by Vars
// in first-occurrence order, rows sorted.
type Result struct {
	Vars []string
	Rows [][]Value
}

// Query evaluates a goal conjunction in the main module's scope.
func (s *System) Query(goals string) (*Result, error) {
	return s.QueryInContext(context.Background(), "main", goals)
}

// QueryContext is Query under the caller's context: cancellation or an
// expired deadline aborts evaluation at a clean statement boundary with a
// *GovernorError (ErrCanceled / ErrTimeout). The configured WithTimeout
// budget, if any, also applies.
func (s *System) QueryContext(ctx context.Context, goals string) (*Result, error) {
	return s.QueryInContext(ctx, "main", goals)
}

// QueryIn evaluates a goal conjunction in the named module's scope.
func (s *System) QueryIn(module, goals string) (*Result, error) {
	return s.QueryInContext(context.Background(), module, goals)
}

// QueryInContext is QueryIn under the caller's context; see QueryContext.
func (s *System) QueryInContext(ctx context.Context, module, goals string) (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.ensure(); err != nil {
		return nil, err
	}
	id, vars, err := s.prepareQuery(module, goals)
	if err != nil {
		return nil, err
	}
	return s.runQueryProc(ctx, id, vars)
}

// runQueryProc executes an already-compiled query procedure and shapes
// its answers into a Result: the shared tail of Query and
// Prepared.Execute.
func (s *System) runQueryProc(ctx context.Context, id string, vars []string) (*Result, error) {
	ctx, cancel := s.execCtx(ctx)
	defer cancel()
	tuples, err := s.machine.CallProcContext(ctx, id, []term.Tuple{{}})
	if err != nil {
		return nil, err
	}
	res := &Result{Vars: vars}
	sorted := make([]term.Tuple, len(tuples))
	copy(sorted, tuples)
	sortTuples(sorted)
	for _, t := range sorted {
		res.Rows = append(res.Rows, []Value(t))
	}
	return res, nil
}

// Prepared is a reusable handle to a compiled query: the goal conjunction
// is parsed and compiled once, and every Execute reuses the compiled
// procedure — together with the prepared-plan cache, a repeated query
// pays parsing, compilation, and physical planning only once. A handle
// survives subsequent Load/Register calls: it transparently re-prepares
// itself when the program has been recompiled underneath it.
type Prepared struct {
	sys    *System
	module string
	goals  string
	id     string
	vars   []string
	gen    uint64
}

// Prepare compiles a goal conjunction in the main module's scope into a
// reusable query handle.
func (s *System) Prepare(goals string) (*Prepared, error) {
	return s.PrepareIn("main", goals)
}

// PrepareIn is Prepare scoped to the named module.
func (s *System) PrepareIn(module, goals string) (*Prepared, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.ensure(); err != nil {
		return nil, err
	}
	id, vars, err := s.prepareQuery(module, goals)
	if err != nil {
		return nil, err
	}
	return &Prepared{sys: s, module: module, goals: goals, id: id, vars: vars, gen: s.gen}, nil
}

// Vars returns the query's output variable names in first-occurrence
// order (the columns of every Execute result).
func (p *Prepared) Vars() []string { return p.vars }

// Execute runs the prepared query and returns its sorted answers.
func (p *Prepared) Execute() (*Result, error) {
	return p.ExecuteContext(context.Background())
}

// ExecuteContext is Execute under the caller's context; see QueryContext
// for cancellation semantics.
func (p *Prepared) ExecuteContext(ctx context.Context) (*Result, error) {
	s := p.sys
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.ensure(); err != nil {
		return nil, err
	}
	if p.gen != s.gen {
		// The program was recompiled since this handle was prepared (new
		// Load or Register): the old procedure ID is gone, so re-prepare
		// against the fresh compilation.
		id, vars, err := s.prepareQuery(p.module, p.goals)
		if err != nil {
			return nil, err
		}
		p.id, p.vars, p.gen = id, vars, s.gen
	}
	return s.runQueryProc(ctx, p.id, p.vars)
}

// prepareQuery compiles a goal conjunction into a query procedure (cached
// per module and goal text) and returns its ID and output variable names.
func (s *System) prepareQuery(module, goals string) (string, []string, error) {
	key := module + "\x00" + goals
	cq, cached := s.queries[key]
	if !cached {
		gs, err := parser.ParseGoals(goals)
		if err != nil {
			return "", nil, err
		}
		id, vars, err := s.compiler.CompileQuery(module, gs)
		if err != nil {
			return "", nil, err
		}
		cq = compiledQuery{id: id, vars: vars}
		s.queries[key] = cq
		// CompileQuery added a procedure to the shared program: snapshot
		// machines need a fresh immutable view.
		s.viewDirty = true
	}
	return cq.id, cq.vars, nil
}

// Explain returns the physical plan the statistics-driven planner would
// choose right now for a goal conjunction in the main module: per-segment
// operator order, access paths, and estimated cardinalities, plus the
// plans of every procedure the query transitively calls.
func (s *System) Explain(goals string) (string, error) {
	return s.ExplainIn("main", goals)
}

// ExplainIn is Explain scoped to the named module.
func (s *System) ExplainIn(module, goals string) (string, error) {
	return s.explainQuery(module, goals, false)
}

// ExplainAnalyze executes a goal conjunction in the main module and
// returns its physical plan annotated with the per-operator actual tuple
// counts observed during that execution (act_in/act_out) alongside the
// planner's estimates.
func (s *System) ExplainAnalyze(goals string) (string, error) {
	return s.ExplainAnalyzeIn("main", goals)
}

// ExplainAnalyzeIn is ExplainAnalyze scoped to the named module.
func (s *System) ExplainAnalyzeIn(module, goals string) (string, error) {
	return s.explainQuery(module, goals, true)
}

func (s *System) explainQuery(module, goals string, analyze bool) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.ensure(); err != nil {
		return "", err
	}
	id, _, err := s.prepareQuery(module, goals)
	if err != nil {
		return "", err
	}
	var beforeEDB, beforeScratch storage.Stats
	if analyze {
		s.machine.ResetProfiles()
		beforeEDB, beforeScratch = *s.edb.Stats(), *s.temp.Stats()
		ctx, cancel := s.execCtx(context.Background())
		defer cancel()
		if _, err := s.machine.CallProcContext(ctx, id, []term.Tuple{{}}); err != nil {
			return "", err
		}
	}
	text, err := s.renderPhysical(id, analyze)
	if err != nil || !analyze {
		return text, err
	}
	return text + s.planCacheTrailer() + s.storageTrailer(beforeEDB, beforeScratch), nil
}

// planCacheTrailer renders the prepared-plan cache counters accumulated
// since the last profile reset — EXPLAIN ANALYZE resets them before its
// run, so the line describes exactly that execution.
func (s *System) planCacheTrailer() string {
	if !s.cfg.planCache {
		return "\nplan cache: disabled\n"
	}
	cs := s.machine.PlanCacheStats()
	return fmt.Sprintf("\nplan cache: hits=%d misses=%d invalidations=%d\n",
		cs.Hits, cs.Misses, cs.Invalidations)
}

// storageTrailer renders the disk engine's block-cache and bloom-filter
// counters for the execution the before-stats were captured at the start
// of (EXPLAIN ANALYZE), summed over the EDB and scratch stores. Empty
// unless a disk-resident store is configured — a main-memory system never
// touches these counters.
func (s *System) storageTrailer(beforeEDB, beforeScratch storage.Stats) string {
	if s.cfg.backend != "disk" && s.cfg.spillDir == "" {
		return ""
	}
	edb, scratch := *s.edb.Stats(), *s.temp.Stats()
	d := func(f func(*storage.Stats) int64) int64 {
		return (f(&edb) - f(&beforeEDB)) + (f(&scratch) - f(&beforeScratch))
	}
	return fmt.Sprintf("block cache: hits=%d misses=%d · bloom: checks=%d skips=%d · run index loads=%d\n",
		d(func(st *storage.Stats) int64 { return st.CacheHits }),
		d(func(st *storage.Stats) int64 { return st.BlocksRead }),
		d(func(st *storage.Stats) int64 { return st.BloomChecks }),
		d(func(st *storage.Stats) int64 { return st.BloomSkips }),
		d(func(st *storage.Stats) int64 { return st.RunIndexLoads }))
}

// ExplainAnalyzeCall invokes an exported procedure like Call, then returns
// its physical plan annotated with the per-operator actual tuple counts
// observed during that invocation.
func (s *System) ExplainAnalyzeCall(module, proc string, in ...[]any) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.ensure(); err != nil {
		return "", err
	}
	s.machine.ResetProfiles()
	beforeEDB, beforeScratch := *s.edb.Stats(), *s.temp.Stats()
	if _, err := s.callLocked(context.Background(), module, proc, in...); err != nil {
		return "", err
	}
	sym := s.lp.Resolve(module, proc)
	text, err := s.renderPhysical(sym.Module+"."+proc, true)
	if err != nil {
		return "", err
	}
	return text + s.planCacheTrailer() + s.storageTrailer(beforeEDB, beforeScratch), nil
}

// ExplainProcPhysical renders a compiled procedure's physical plan (and
// those of its transitive callees) with current-statistics estimates.
func (s *System) ExplainProcPhysical(module, proc string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.ensure(); err != nil {
		return "", err
	}
	id := module + "." + proc
	if _, ok := s.compiler.Program().Procs[id]; !ok {
		return "", fmt.Errorf("gluenail: no compiled procedure %s", id)
	}
	return s.renderPhysical(id, false)
}

// renderPhysical renders the root procedure followed by every procedure it
// transitively calls, in sorted order.
func (s *System) renderPhysical(rootID string, analyze bool) (string, error) {
	var sb strings.Builder
	ids := append([]string{rootID},
		plan.CalledProcs(s.compiler.Program(), rootID)...)
	for i, id := range ids {
		if i > 0 {
			sb.WriteByte('\n')
		}
		text, err := s.machine.ExplainPhysical(id, analyze)
		if err != nil {
			return "", err
		}
		sb.WriteString(text)
	}
	return sb.String(), nil
}

// Call invokes an exported procedure with the given input tuples (nil for
// a procedure with no bound arguments) and returns its sorted results.
func (s *System) Call(module, proc string, in ...[]any) ([][]Value, error) {
	return s.CallContext(context.Background(), module, proc, in...)
}

// CallContext is Call under the caller's context: cancellation or an
// expired deadline aborts the procedure at a clean statement boundary
// with a *GovernorError — every statement committed before the abort
// stays durable, the interrupted statement's effects are discarded from
// the WAL. The configured WithTimeout budget, if any, also applies.
func (s *System) CallContext(ctx context.Context, module, proc string, in ...[]any) ([][]Value, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.callLocked(ctx, module, proc, in...)
}

// callLocked is CallContext with mu already held (shared with
// ExplainAnalyzeCall, which must run the call and render the plan under
// one critical section).
func (s *System) callLocked(ctx context.Context, module, proc string, in ...[]any) ([][]Value, error) {
	if err := s.ensure(); err != nil {
		return nil, err
	}
	sym := s.lp.Resolve(module, proc)
	if sym == nil || sym.Class != modsys.ClassProc {
		return nil, fmt.Errorf("gluenail: no procedure %s.%s", module, proc)
	}
	var tuples []term.Tuple
	if sym.Bound == 0 {
		tuples = []term.Tuple{{}}
	}
	for _, row := range in {
		t, err := toTuple(row)
		if err != nil {
			return nil, err
		}
		tuples = append(tuples, t)
	}
	ctx, cancel := s.execCtx(ctx)
	defer cancel()
	results, err := s.machine.CallProcContext(ctx, sym.Module+"."+proc, tuples)
	if err != nil {
		return nil, err
	}
	sortTuples(results)
	out := make([][]Value, len(results))
	for i, t := range results {
		out[i] = []Value(t)
	}
	return out, nil
}

// ExplainProc returns a textual rendering of a procedure's compiled plan:
// pipeline segments, break placement, duplicate-elimination and index
// decisions. Generated NAIL! procedures use IDs like "main.tc@bf".
func (s *System) ExplainProc(module, proc string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.ensure(); err != nil {
		return "", err
	}
	id := module + "." + proc
	p, ok := s.compiler.Program().Procs[id]
	if !ok {
		return "", fmt.Errorf("gluenail: no compiled procedure %s", id)
	}
	return plan.FormatProc(p), nil
}

// Procs lists the IDs of all compiled procedures, including generated
// NAIL! procedures, in sorted order.
func (s *System) Procs() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.ensure(); err != nil {
		return nil, err
	}
	var ids []string
	for id := range s.compiler.Program().Procs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids, nil
}

// SaveEDB writes the EDB to a file (§10: EDB relations persist on disk
// between runs).
func (s *System) SaveEDB(path string) (rerr error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.guardStorage(&rerr)
	return storage.SaveFile(path, s.edb)
}

// LoadEDB reads an EDB image into the store. On an engine with a direct
// bulk path (storage.BulkLoader — the disk backend), large relations in
// the image bypass the WAL and land straight in runs, fenced by a
// checkpoint on each side (see bulkLoad for the crash-safety argument);
// small relations still insert row at a time through the journal.
func (s *System) LoadEDB(path string) (rerr error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.guardStorage(&rerr)
	if s.durErr != nil {
		return s.durErr
	}
	_, bulk := s.edb.(storage.BulkLoader)
	if bulk && s.wlog != nil {
		if err := s.commit(); err != nil {
			return err
		}
		if err := s.wlog.Checkpoint(s.edb); err != nil {
			return err
		}
	}
	if err := storage.LoadFile(path, s.edb); err != nil {
		return err
	}
	if err := s.commit(); err != nil {
		return err
	}
	if bulk && s.wlog != nil {
		return s.wlog.Checkpoint(s.edb)
	}
	return nil
}

// Stats exposes executor and back-end counters for the experiments.
type Stats struct {
	Exec    vm.ExecStats
	EDB     storage.Stats
	Scratch storage.Stats
}

// PlanCacheStats holds the prepared-plan cache's hit/miss/invalidation
// counters.
type PlanCacheStats = plan.CacheStats

// PlanCacheStats returns a snapshot of the prepared-plan cache counters
// (all zero before the first query, or with the cache disabled).
func (s *System) PlanCacheStats() PlanCacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.machine == nil {
		return PlanCacheStats{}
	}
	return s.machine.PlanCacheStats()
}

// Stats returns a snapshot of the current counters.
func (s *System) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{EDB: *s.edb.Stats(), Scratch: *s.temp.Stats()}
	if s.machine != nil {
		st.Exec = s.machine.Stats
	}
	return st
}

// scrubber and degrader are the optional engine faces behind ScrubEDB and
// Degraded; the disk engine implements both.
type scrubber interface {
	Scrub(repair bool) []storage.Finding
}
type degrader interface {
	Degraded() error
}

// ScrubEDB verifies every checksum in a disk-backed EDB's stored runs,
// manifest, and intern file, returning one human-readable line per
// finding (empty means clean). With repair set, auxiliary damage — hash
// sections, bloom filters, footers — is healed by rewriting the run from
// its surviving tuple data, and runs with damaged tuple bytes are
// quarantined (renamed aside and dropped from the relation) rather than
// left to return wrong answers. Requires the disk backend.
func (s *System) ScrubEDB(repair bool) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.durErr != nil {
		return nil, s.durErr
	}
	sc, ok := s.edb.(scrubber)
	if !ok {
		return nil, fmt.Errorf("gluenail: ScrubEDB requires the disk backend (WithBackend(\"disk\"))")
	}
	findings := sc.Scrub(repair)
	out := make([]string, len(findings))
	for i, f := range findings {
		out[i] = f.String()
	}
	return out, nil
}

// Degraded reports whether the EDB engine has entered read-only degraded
// mode after a disk fault: non-nil is the fault that tripped it (an
// ErrDiskFault). A degraded store keeps serving reads from its durable
// base; writes fail typed until the store is reopened. Always nil for the
// main-memory backend.
func (s *System) Degraded() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.edb.(degrader); ok {
		return d.Degraded()
	}
	return nil
}

func sortTuples(ts []term.Tuple) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Compare(ts[j]) < 0 })
}
