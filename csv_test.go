package gluenail

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"gluenail/internal/term"
)

func TestLoadCSVTyping(t *testing.T) {
	sys := New()
	sys.Load(`edb reading(Station, Temp, Note);`)
	err := sys.LoadCSV("reading", strings.NewReader(
		"oslo,-3,cold\nmadang,36.5,humid\n'42',7,'7'\n"))
	if err != nil {
		t.Fatal(err)
	}
	rows, _ := sys.Relation("reading", 3)
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	// Typed fields: int, float, forced strings.
	res, err := sys.Query("reading(oslo, T, _)")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != -3 {
		t.Errorf("oslo temp = %v", res.Rows[0][0])
	}
	res, _ = sys.Query("reading(madang, T, _)")
	if res.Rows[0][0].Float() != 36.5 {
		t.Errorf("madang temp = %v", res.Rows[0][0])
	}
	// '42' loaded as the STRING "42", and '7' as the string "7".
	res, _ = sys.Query(`reading('42', N, S)`)
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 7 || res.Rows[0][1].Str() != "7" {
		t.Errorf("quoted-string row = %v", res.Rows)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	sys := New()
	sys.Load(`edb data(A, B, C);`)
	sys.Assert("data",
		[]any{1, "plain", 2.5},
		[]any{2, "123", -1.0},  // a string of digits must survive as a string
		[]any{3, "it,s", 0.25}, // comma inside a field
	)
	var buf bytes.Buffer
	if err := sys.SaveCSV("data", 3, &buf); err != nil {
		t.Fatal(err)
	}
	sys2 := New()
	sys2.Load(`edb data(A, B, C);`)
	if err := sys2.LoadCSV("data", bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	a, _ := sys.Relation("data", 3)
	b, _ := sys2.Relation("data", 3)
	if len(a) != len(b) {
		t.Fatalf("round trip: %d vs %d rows\ncsv:\n%s", len(a), len(b), buf.String())
	}
	for i := range a {
		for j := range a[i] {
			if !a[i][j].Equal(b[i][j]) {
				t.Errorf("row %d col %d: %v vs %v (kind %v vs %v)\ncsv:\n%s",
					i, j, a[i][j], b[i][j], a[i][j].Kind(), b[i][j].Kind(), buf.String())
			}
		}
	}
}

func TestCSVFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "edges.csv")
	sys := New()
	sys.Load(`edb edge(X,Y);`)
	sys.Assert("edge", []any{1, 2}, []any{2, 3})
	if err := sys.SaveCSVFile("edge", 2, path); err != nil {
		t.Fatal(err)
	}
	sys2 := New()
	sys2.Load(`
edb edge(X,Y);
tc(X,Y) :- edge(X,Y).
tc(X,Z) :- tc(X,Y) & edge(Y,Z).
`)
	if err := sys2.LoadCSVFile("edge", path); err != nil {
		t.Fatal(err)
	}
	res, err := sys2.Query("tc(1, X)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("tc over CSV-loaded edges = %v", res.Rows)
	}
	if err := sys2.LoadCSVFile("edge", filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestCSVErrors(t *testing.T) {
	sys := New()
	if err := sys.LoadCSV("r", strings.NewReader("a,b\nc\n")); err == nil {
		t.Error("ragged records should fail")
	}
	if err := sys.SaveCSV("absent", 2, &bytes.Buffer{}); err == nil {
		t.Error("saving a missing relation should fail")
	}
}

func TestQuickCSVRoundTripValues(t *testing.T) {
	// Property: any tuple of ints/floats/strings survives a CSV round trip
	// with kinds intact.
	prop := func(i int64, f float64, s string) bool {
		if strings.ContainsAny(s, "\r\n") {
			return true // csv quoting of newlines is reader-config territory
		}
		sys := New()
		sys.Load(`edb t(A,B,C);`)
		if err := sys.Assert("t", []any{i, f, s}); err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := sys.SaveCSV("t", 3, &buf); err != nil {
			return false
		}
		sys2 := New()
		sys2.Load(`edb t(A,B,C);`)
		if err := sys2.LoadCSV("t", bytes.NewReader(buf.Bytes())); err != nil {
			return false
		}
		rows, _ := sys2.Relation("t", 3)
		if len(rows) != 1 {
			return false
		}
		return rows[0][0].Equal(Int(i)) && rows[0][1].Equal(Float(f)) &&
			rows[0][2].Equal(Str(s))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTraceOption(t *testing.T) {
	var trace bytes.Buffer
	sys := New(WithTrace(&trace))
	sys.Load(`
edb e(X,Y);
tc(X,Y) :- e(X,Y).
tc(X,Z) :- tc(X,Y) & e(Y,Z).
`)
	sys.Assert("e", []any{1, 2})
	if _, err := sys.Query("tc(1, X)"); err != nil {
		t.Fatal(err)
	}
	out := trace.String()
	for _, want := range []string{"call main.tc@bf", "row(s)", "return from"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
}

func TestAssertArityValidation(t *testing.T) {
	sys := New()
	sys.Load(`edb edge(X,Y);`)
	// Before compilation, arity is unchecked (declaration not yet linked).
	if err := sys.Assert("edge", []any{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Query("edge(X,Y)"); err != nil {
		t.Fatal(err)
	}
	// After compilation the declared arity is enforced.
	if err := sys.Assert("edge", []any{1, 2, 3}); err == nil {
		t.Error("arity mismatch after compile should fail")
	}
	if err := sys.Assert("edge", []any{3, 4}); err != nil {
		t.Errorf("correct arity should pass: %v", err)
	}
}

// TestCSVHardCases pins the tricky corners of the CSV codec: special
// floats, number-like strings, and stability of a double round trip.
func TestCSVHardCases(t *testing.T) {
	floats := []float64{
		math.NaN(), math.Inf(1), math.Inf(-1),
		math.Copysign(0, -1), 0, 1, -1.5,
		1e21,    // formats in e-notation yet must stay a float
		1 << 53, // integral, needs the .0 suffix
		0.1, math.MaxFloat64, math.SmallestNonzeroFloat64,
	}
	// One float per row keyed by index: NaN breaks ordering comparisons,
	// so equality is checked per key instead of by sorted position.
	sys := New()
	for i, f := range floats {
		if err := sys.Assert("f", []any{int64(i), f}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := sys.SaveCSV("f", 2, &buf); err != nil {
		t.Fatal(err)
	}
	re := New()
	if err := re.LoadCSV("f", bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	rows, _ := re.Relation("f", 2)
	if len(rows) != len(floats) {
		t.Fatalf("reloaded %d rows, want %d:\n%s", len(rows), len(floats), buf.String())
	}
	for _, row := range rows {
		i := row[0].Int()
		got := row[1]
		if got.Kind() != term.Float {
			t.Errorf("row %d: %v reloaded as %v, want a float (csv: %q)",
				i, floats[i], got, buf.String())
			continue
		}
		want := floats[i]
		if math.IsNaN(want) {
			if !math.IsNaN(got.Float()) {
				t.Errorf("row %d: NaN reloaded as %v", i, got.Float())
			}
		} else if got.Float() != want ||
			math.Signbit(got.Float()) != math.Signbit(want) {
			t.Errorf("row %d: %v reloaded as %v", i, want, got.Float())
		}
	}

	// Number-like and quote-like strings must stay strings.
	strs := []string{"42", "3.5", "NaN", "+Inf", "-Inf", "1e9", "'already'", "plain", "", "0x10"}
	sys2 := New()
	for i, s := range strs {
		if err := sys2.Assert("s", []any{int64(i), s}); err != nil {
			t.Fatal(err)
		}
	}
	buf.Reset()
	if err := sys2.SaveCSV("s", 2, &buf); err != nil {
		t.Fatal(err)
	}
	re2 := New()
	if err := re2.LoadCSV("s", bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	rows2, _ := re2.Relation("s", 2)
	if len(rows2) != len(strs) {
		t.Fatalf("reloaded %d rows, want %d:\n%s", len(rows2), len(strs), buf.String())
	}
	for _, row := range rows2 {
		i := row[0].Int()
		if row[1].Kind() != term.Str || row[1].Str() != strs[i] {
			t.Errorf("row %d: string %q reloaded as %v (csv: %q)", i, strs[i], row[1], buf.String())
		}
	}

	// A second save must be byte-identical to the first: the codec is a
	// fixpoint after one round trip.
	var buf2 bytes.Buffer
	if err := re2.SaveCSV("s", 2, &buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Errorf("save→load→save not stable:\nfirst  %q\nsecond %q", buf.String(), buf2.String())
	}
}
