// Command gluenaild serves a Glue-Nail database to concurrent network
// sessions. Reads execute on MVCC snapshots — every statement (or read
// transaction) sees an immutable statement-boundary state, and writers
// never block readers; writes serialize through the WAL group-commit
// path. The execution governor runs as per-request QoS: per-session
// budgets, admission control on concurrent statements, and fair sharing
// of the morsel workers.
//
// Usage:
//
//	gluenaild [flags] [file.glue...]
//
//	-addr host:port     listen address (default 127.0.0.1:7643)
//	-data-dir d         durable EDB: write-ahead log + snapshots under d,
//	                    crash recovery on open (omit for in-memory)
//	-store name         storage engine: mem (default) or disk (relations in
//	                    on-disk runs under d/store; EDB may exceed RAM)
//	-spill-dir d        out-of-core scratch tables: spill to disk under d
//	                    instead of failing on the max-rel-rows budget
//	-spill-budget n     scratch rows held in memory before spilling
//	-max-rel-rows n     per-session in-memory rows per relation budget
//	-fsync mode         WAL fsync mode: batch (default), always, none
//	-workers n          morsel workers shared fairly across sessions
//	                    (0 = GOMAXPROCS)
//	-max-sessions n     concurrent session cap (default 1024)
//	-max-statements n   concurrent statement cap / admission gate
//	                    (default 2×GOMAXPROCS)
//	-timeout d          per-session wall-clock budget per statement
//	-max-tuples n       per-session tuple budget per statement
//	-max-depth n        per-session procedure recursion limit
//	-max-iters n        per-session repeat-loop limit (negative = off)
//	-drain-timeout d    graceful-shutdown drain budget (default 10s)
//	-verify-on-open     fsck the data directory before serving; refuse to
//	                    start if any serious (non-benign) damage is found
//	-scrub-interval d   background scrubber cadence on a disk store: one
//	                    stored run's checksums verified per interval
//	                    (0 = off)
//
// SIGINT/SIGTERM shut down gracefully: new statements are rejected,
// in-flight statements drain through the governor (cancelled past the
// drain timeout), sessions close, and — when durable — the EDB is
// checkpointed and the WAL closed cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"gluenail"
	"gluenail/internal/server"
	"gluenail/internal/storage/disk"
	"gluenail/internal/wal"
)

// fsckDataDir runs the offline verifier over a data directory (WAL,
// snapshots, and the disk store under dir/store when present) without
// repairs, returning the rendered findings.
func fsckDataDir(dir string) ([]string, error) {
	findings, err := wal.Verify(dir)
	if err != nil {
		return nil, err
	}
	st := filepath.Join(dir, "store")
	if _, err := os.Stat(st); err == nil {
		df, err := disk.FsckDir(st, false)
		if err != nil {
			return nil, err
		}
		findings = append(findings, df...)
	}
	out := make([]string, len(findings))
	for i, f := range findings {
		out[i] = f.String()
	}
	return out, nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gluenaild:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr       = flag.String("addr", "127.0.0.1:7643", "listen address")
		dataDir    = flag.String("data-dir", "", "durable EDB directory (write-ahead log + snapshots, recovered on open)")
		store      = flag.String("store", "mem", "storage engine: mem or disk")
		spillDir   = flag.String("spill-dir", "", "spill scratch tables to disk runs under this directory")
		spillBud   = flag.Int("spill-budget", 0, "scratch rows held in memory before spilling (0 = default)")
		blockCache = flag.Int("block-cache", 0, "disk engine decoded-block cache entries (0 = default)")
		noCompress = flag.Bool("no-compress", false, "store disk run blocks raw instead of compressed")
		maxRel     = flag.Int("max-rel-rows", 0, "per-session in-memory rows per relation (0 = unlimited; with -spill-dir, scratch spills instead of failing)")
		fsyncStr   = flag.String("fsync", "batch", "WAL fsync mode: batch, always, or none")
		workers    = flag.Int("workers", 0, "morsel workers shared across sessions (0 = GOMAXPROCS)")
		maxSess    = flag.Int("max-sessions", 0, "concurrent session cap (0 = 1024)")
		maxStmt    = flag.Int("max-statements", 0, "concurrent statement cap (0 = 2x GOMAXPROCS)")
		timeout    = flag.Duration("timeout", 0, "per-session wall-clock budget per statement (0 = none)")
		maxTuples  = flag.Int64("max-tuples", 0, "per-session tuple budget per statement (0 = unlimited)")
		maxDepth   = flag.Int("max-depth", 0, "per-session procedure recursion limit (0 = default)")
		maxIters   = flag.Int("max-iters", 0, "per-session repeat-loop limit (0 = default, negative = unlimited)")
		drain      = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain budget")
		quiet      = flag.Bool("quiet", false, "suppress per-session log lines")
		verifyOpen = flag.Bool("verify-on-open", false, "fsck the data directory before serving; refuse to start on serious damage")
		scrubEvery = flag.Duration("scrub-interval", 0, "background scrubber cadence on a disk store (0 = off)")
	)
	flag.Parse()

	if *verifyOpen && *dataDir != "" {
		findings, err := fsckDataDir(*dataDir)
		if err != nil {
			return fmt.Errorf("-verify-on-open: %w", err)
		}
		serious := 0
		for _, f := range findings {
			log.Printf("gluenaild: verify-on-open: %s", f)
			if !strings.HasSuffix(f, "[benign]") {
				serious++
			}
		}
		if serious > 0 {
			return fmt.Errorf("-verify-on-open: %d serious finding(s); run `gluenail fsck -repair -data-dir %s` to heal or quarantine", serious, *dataDir)
		}
	}

	var opts []gluenail.Option
	if *scrubEvery > 0 {
		opts = append(opts, gluenail.WithScrubInterval(*scrubEvery))
	}
	if *workers > 0 {
		opts = append(opts, gluenail.WithParallelism(*workers))
	}
	if *store != "" && *store != "mem" {
		opts = append(opts, gluenail.WithBackend(*store))
	}
	if *spillDir != "" {
		opts = append(opts, gluenail.WithSpill(*spillDir, *spillBud))
	}
	if *blockCache != 0 {
		opts = append(opts, gluenail.WithBlockCache(*blockCache))
	}
	if *noCompress {
		opts = append(opts, gluenail.WithBlockCompression(false))
	}
	if *maxRel != 0 {
		opts = append(opts, gluenail.WithBudget(gluenail.Budget{MaxRelRows: *maxRel}))
	}
	switch *fsyncStr {
	case "batch":
		opts = append(opts, gluenail.WithFsync(gluenail.FsyncBatch))
	case "always":
		opts = append(opts, gluenail.WithFsync(gluenail.FsyncAlways))
	case "none":
		opts = append(opts, gluenail.WithFsync(gluenail.FsyncNever))
	default:
		return fmt.Errorf("unknown -fsync mode %q", *fsyncStr)
	}

	var sys *gluenail.System
	var err error
	if *dataDir != "" {
		sys, err = gluenail.Open(*dataDir, opts...)
		if err != nil {
			return err
		}
	} else {
		sys = gluenail.New(opts...)
	}
	defer sys.Close()

	for _, path := range flag.Args() {
		if err := sys.LoadFile(path); err != nil {
			return err
		}
	}

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	srv, err := server.New(server.Config{
		System: sys,
		SessionBudget: gluenail.Budget{
			Timeout:      *timeout,
			MaxTuples:    *maxTuples,
			MaxRelRows:   *maxRel,
			MaxDepth:     *maxDepth,
			MaxLoopIters: *maxIters,
		},
		MaxSessions:   *maxSess,
		MaxStatements: *maxStmt,
		Workers:       *workers,
		Logf:          logf,
	})
	if err != nil {
		return err
	}

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	log.Printf("gluenaild: serving on %s (data-dir=%q)", lis.Addr(), *dataDir)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("gluenaild: %v: draining sessions (budget %s)", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("gluenaild: drain incomplete: %v", err)
		}
	case err := <-serveErr:
		if err != nil {
			return err
		}
	}

	// Quiescent: checkpoint (durable EDB compacts the WAL into a fresh
	// snapshot) and close the log cleanly.
	if *dataDir != "" {
		if err := sys.Checkpoint(); err != nil {
			log.Printf("gluenaild: checkpoint: %v", err)
		}
	}
	if err := sys.Close(); err != nil {
		return err
	}
	log.Printf("gluenaild: shutdown complete")
	return nil
}
