// Command gluenail runs Glue-Nail programs: it loads one or more source
// files, optionally restores a persisted EDB, then calls a procedure,
// answers a one-shot query, or starts an interactive query loop.
//
// Usage:
//
//	gluenail [flags] file.glue...
//	gluenail fsck [-repair] -data-dir d        offline integrity check
//
// The fsck subcommand verifies every checksum in a data directory without
// opening the database: WAL frame CRCs, snapshot envelopes, and — when a
// disk-backed store lives under d/store — run blocks, hash sections,
// bloom filters, footers, the manifest, and the intern file. It prints
// one line per finding and exits non-zero if any serious (non-benign)
// damage remains. With -repair, auxiliary artifacts are rebuilt from the
// surviving tuple data and runs with damaged tuple bytes are quarantined
// (renamed aside and dropped from the manifest) instead of being left to
// return wrong answers.
//
//	-edb file     load this EDB image before running, save it after
//	-data-dir d   durable EDB: write-ahead log + snapshots under d,
//	              crash recovery on open
//	-store name   storage engine: mem (default) or disk (index-organized
//	              on-disk runs; with -data-dir the runs persist under
//	              d/store)
//	-spill-dir d  out-of-core scratch tables: spill to disk runs under d
//	              instead of failing on the -max-rel-rows budget
//	-spill-budget n
//	              scratch rows held in memory before spilling (0 = default)
//	-fsync mode   WAL fsync mode: batch (default), always, none
//	-call m.proc  call an exported 0-bound procedure and print its results
//	-q goals      evaluate one query conjunction and print the answers
//	-explain      print the physical plan (estimated cardinalities) for
//	              -q or -call instead of executing it
//	-explain-analyze
//	              execute -q or -call, then print the physical plan with
//	              actual per-operator tuple counts next to the estimates
//	-i            interactive query loop on stdin (default when no -call/-q)
//	-module m     module scope for queries (default "main")
//	-naive        use naive instead of semi-naive evaluation
//	-no-magic     disable magic-set rewriting
//	-plan-cache   cache physical plans across repeated statements
//	              (default true; -plan-cache=false re-plans every time)
//	-batch-kernels
//	              vectorized batch execution kernels (default true;
//	              -batch-kernels=false runs tuple-at-a-time)
//	-workers n    worker pool size for intra-segment parallelism
//	-timeout d    wall-clock budget per query/call (e.g. -timeout 30s);
//	              an expired call fails with a timeout error at a clean
//	              statement boundary
//	-max-tuples n max tuples inserted per query/call (memory budget)
//	-max-depth n  max procedure-call recursion depth
//	-max-iters n  max repeat-loop iterations (negative = unlimited)
//	-cpuprofile f write a CPU profile to f (inspect with go tool pprof)
//	-memprofile f write a heap profile to f on exit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"gluenail"
	"gluenail/internal/storage"
	"gluenail/internal/storage/disk"
	"gluenail/internal/wal"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "fsck" {
		if err := runFsck(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "gluenail: fsck:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gluenail:", err)
		os.Exit(1)
	}
}

// runFsck is the offline integrity checker: it verifies every persistent
// checksum under a data directory (or a bare store directory) without
// opening the database, reports findings one per line, and exits non-zero
// when serious damage remains.
func runFsck(args []string) error {
	fs := flag.NewFlagSet("fsck", flag.ExitOnError)
	repair := fs.Bool("repair", false, "rebuild damaged auxiliary structures from surviving tuple data; quarantine runs with damaged tuples")
	dataDir := fs.String("data-dir", "", "data directory to check (WAL + snapshots; disk store under data-dir/store)")
	storeDir := fs.String("store-dir", "", "bare disk-engine store directory to check (no WAL)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataDir == "" && *storeDir == "" {
		if fs.NArg() == 1 {
			*dataDir = fs.Arg(0)
		} else {
			return fmt.Errorf("usage: gluenail fsck [-repair] -data-dir d  (or -store-dir d)")
		}
	}
	var findings []storage.Finding
	if *dataDir != "" {
		wf, err := wal.Verify(*dataDir)
		if err != nil {
			return err
		}
		findings = append(findings, wf...)
		st := filepath.Join(*dataDir, "store")
		if _, err := os.Stat(st); err == nil {
			df, err := disk.FsckDir(st, *repair)
			if err != nil {
				return err
			}
			findings = append(findings, df...)
		}
	}
	if *storeDir != "" {
		df, err := disk.FsckDir(*storeDir, *repair)
		if err != nil {
			return err
		}
		findings = append(findings, df...)
	}
	for _, f := range findings {
		fmt.Println(f.String())
	}
	if n := storage.CountSerious(findings); n > 0 {
		return fmt.Errorf("%d serious finding(s)", n)
	}
	if len(findings) == 0 {
		fmt.Println("fsck: clean")
	} else {
		fmt.Println("fsck: no serious damage remains")
	}
	return nil
}

func run() error {
	var (
		edbPath     = flag.String("edb", "", "EDB image to load before and save after the run")
		dataDir     = flag.String("data-dir", "", "durable EDB directory (write-ahead log + snapshots, recovered on open)")
		store       = flag.String("store", "mem", "storage engine: mem or disk")
		spillDir    = flag.String("spill-dir", "", "spill scratch tables to disk runs under this directory")
		spillBudget = flag.Int("spill-budget", 0, "scratch rows held in memory before spilling (0 = default)")
		blockCache  = flag.Int("block-cache", 0, "disk engine decoded-block cache entries (0 = default)")
		noCompress  = flag.Bool("no-compress", false, "store disk run blocks raw instead of compressed")
		fsyncStr    = flag.String("fsync", "batch", "WAL fsync mode: batch, always, or none")
		call        = flag.String("call", "", "procedure to call, as module.proc")
		query       = flag.String("q", "", "query conjunction to evaluate")
		interactive = flag.Bool("i", false, "interactive query loop")
		module      = flag.String("module", "main", "module scope for queries")
		naive       = flag.Bool("naive", false, "naive instead of semi-naive evaluation")
		noMagic     = flag.Bool("no-magic", false, "disable magic-set rewriting")
		explain     = flag.String("plan", "", "print the compiled plan of module.proc (or 'all') and exit")
		explainPhys = flag.Bool("explain", false, "print the physical plan (estimated cardinalities) for -q or -call instead of executing")
		explainAnal = flag.Bool("explain-analyze", false, "execute -q or -call and print the physical plan with actual per-op tuple counts")
		trace       = flag.Bool("trace", false, "trace statement execution to stderr")
		stats       = flag.Bool("stats", false, "print executor statistics after the run")
		workers     = flag.Int("workers", 0, "worker pool size for intra-segment parallelism (0 = GOMAXPROCS)")
		planCache   = flag.Bool("plan-cache", true, "cache physical plans across repeated statements (invalidated on stats-epoch or selectivity drift)")
		batchKern   = flag.Bool("batch-kernels", true, "vectorized batch execution kernels (false = scalar tuple-at-a-time)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		timeout     = flag.Duration("timeout", 0, "wall-clock budget per query/call (e.g. 30s; 0 = none)")
		maxTuples   = flag.Int64("max-tuples", 0, "max tuples inserted per query/call (0 = unlimited)")
		maxRelRows  = flag.Int("max-rel-rows", 0, "max rows held in memory per relation (0 = unlimited; with -spill-dir, scratch tables spill instead of failing)")
		maxDepth    = flag.Int("max-depth", 0, "max procedure-call recursion depth (0 = default, negative = unlimited)")
		maxIters    = flag.Int("max-iters", 0, "max repeat-loop iterations (0 = default, negative = unlimited)")
	)
	var loadCSVs, saveCSVs []string
	flag.Func("load-csv", "load rel=file.csv into the EDB (repeatable)", func(v string) error {
		loadCSVs = append(loadCSVs, v)
		return nil
	})
	flag.Func("save-csv", "save rel/arity=file.csv after the run (repeatable)", func(v string) error {
		saveCSVs = append(saveCSVs, v)
		return nil
	})
	flag.Parse()
	if flag.NArg() == 0 {
		return fmt.Errorf("no source files; usage: gluenail [flags] file.glue...")
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gluenail: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live objects before the heap snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "gluenail: memprofile:", err)
			}
		}()
	}
	var opts []gluenail.Option
	opts = append(opts, gluenail.WithOutput(os.Stdout), gluenail.WithInput(os.Stdin))
	if *trace {
		opts = append(opts, gluenail.WithTrace(os.Stderr))
	}
	if *naive {
		opts = append(opts, gluenail.WithNaiveEvaluation())
	}
	if *noMagic {
		opts = append(opts, gluenail.WithoutMagicSets())
	}
	if *workers != 0 {
		opts = append(opts, gluenail.WithParallelism(*workers))
	}
	if !*planCache {
		opts = append(opts, gluenail.WithPlanCache(false))
	}
	if !*batchKern {
		opts = append(opts, gluenail.WithBatchKernels(false))
	}
	if *timeout != 0 || *maxTuples != 0 || *maxRelRows != 0 || *maxDepth != 0 || *maxIters != 0 {
		opts = append(opts, gluenail.WithBudget(gluenail.Budget{
			Timeout:      *timeout,
			MaxTuples:    *maxTuples,
			MaxRelRows:   *maxRelRows,
			MaxDepth:     *maxDepth,
			MaxLoopIters: *maxIters,
		}))
	}
	if *store != "" && *store != "mem" {
		opts = append(opts, gluenail.WithBackend(*store))
	}
	if *spillDir != "" {
		opts = append(opts, gluenail.WithSpill(*spillDir, *spillBudget))
	}
	if *blockCache != 0 {
		opts = append(opts, gluenail.WithBlockCache(*blockCache))
	}
	if *noCompress {
		opts = append(opts, gluenail.WithBlockCompression(false))
	}
	var sys *gluenail.System
	if *dataDir != "" {
		mode, err := parseFsync(*fsyncStr)
		if err != nil {
			return err
		}
		sys, err = gluenail.Open(*dataDir, append(opts, gluenail.WithFsync(mode))...)
		if err != nil {
			return fmt.Errorf("recovering -data-dir %q: %w", *dataDir, err)
		}
	} else {
		sys = gluenail.New(opts...)
	}
	for _, path := range flag.Args() {
		if err := sys.LoadFile(path); err != nil {
			return fmt.Errorf("loading %s: %w", path, err)
		}
	}
	if *edbPath != "" {
		if _, err := os.Stat(*edbPath); err == nil {
			if err := sys.LoadEDB(*edbPath); err != nil {
				return fmt.Errorf("loading EDB image %s: %w", *edbPath, err)
			}
		}
	}
	for _, spec := range loadCSVs {
		rel, path, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("-load-csv wants rel=file.csv, got %q", spec)
		}
		if err := sys.LoadCSVFile(rel, path); err != nil {
			return fmt.Errorf("loading CSV %s into %s: %w", path, rel, err)
		}
	}
	if *explain != "" {
		if *explain == "all" {
			ids, err := sys.Procs()
			if err != nil {
				return err
			}
			for _, id := range ids {
				mod, proc, _ := strings.Cut(id, ".")
				text, err := sys.ExplainProc(mod, proc)
				if err != nil {
					return err
				}
				fmt.Print(text)
			}
			return nil
		}
		mod, proc, ok := strings.Cut(*explain, ".")
		if !ok {
			mod, proc = "main", *explain
		}
		text, err := sys.ExplainProc(mod, proc)
		if err != nil {
			return err
		}
		fmt.Print(text)
		return nil
	}
	switch {
	case (*explainPhys || *explainAnal) && *query != "":
		var text string
		var err error
		if *explainAnal {
			text, err = sys.ExplainAnalyzeIn(*module, *query)
		} else {
			text, err = sys.ExplainIn(*module, *query)
		}
		if err != nil {
			return fmt.Errorf("explaining query %q: %w", *query, err)
		}
		fmt.Print(text)
	case (*explainPhys || *explainAnal) && *call != "":
		mod, proc, ok := strings.Cut(*call, ".")
		if !ok {
			mod, proc = "main", *call
		}
		var text string
		var err error
		if *explainAnal {
			text, err = sys.ExplainAnalyzeCall(mod, proc)
		} else {
			text, err = sys.ExplainProcPhysical(mod, proc)
		}
		if err != nil {
			return fmt.Errorf("explaining %s.%s: %w", mod, proc, err)
		}
		fmt.Print(text)
	case *explainPhys || *explainAnal:
		return fmt.Errorf("-explain/-explain-analyze need -q or -call")
	case *call != "":
		mod, proc, ok := strings.Cut(*call, ".")
		if !ok {
			mod, proc = "main", *call
		}
		rows, err := sys.Call(mod, proc)
		if err != nil {
			return fmt.Errorf("calling %s.%s: %w", mod, proc, err)
		}
		printRows(rows)
	case *query != "":
		if err := answer(sys, *module, *query); err != nil {
			return fmt.Errorf("query %q: %w", *query, err)
		}
	default:
		*interactive = true
	}
	if *interactive {
		if err := repl(sys, *module); err != nil {
			return err
		}
	}
	if *edbPath != "" {
		if err := sys.SaveEDB(*edbPath); err != nil {
			return fmt.Errorf("saving EDB image %s: %w", *edbPath, err)
		}
	}
	for _, spec := range saveCSVs {
		relArity, path, ok := strings.Cut(spec, "=")
		rel, arityText, ok2 := strings.Cut(relArity, "/")
		if !ok || !ok2 {
			return fmt.Errorf("-save-csv wants rel/arity=file.csv, got %q", spec)
		}
		arity, err := strconv.Atoi(arityText)
		if err != nil {
			return fmt.Errorf("-save-csv arity: %w", err)
		}
		if err := sys.SaveCSVFile(rel, arity, path); err != nil {
			return fmt.Errorf("saving CSV %s from %s/%d: %w", path, rel, arity, err)
		}
	}
	if err := sys.Close(); err != nil {
		return fmt.Errorf("closing -data-dir %q: %w", *dataDir, err)
	}
	if *stats {
		st := sys.Stats()
		fmt.Fprintf(os.Stderr,
			"stats: %d stmts, %d loop iterations, %d pipeline breaks, %d tuples stored, %d deduped, %d proc calls\n",
			st.Exec.StmtsExecuted, st.Exec.LoopIterations, st.Exec.PipelineBreaks,
			st.Exec.TuplesMaterialized, st.Exec.RowsDeduped, st.Exec.ProcCalls)
		fmt.Fprintf(os.Stderr,
			"stats: EDB %d inserts, %d deletes, %d rows scanned, %d index builds; scratch %d relations created\n",
			st.EDB.Inserts, st.EDB.Deletes, st.EDB.RowsScanned, st.EDB.IndexBuilds,
			st.Scratch.RelsCreated)
		if rf, rs := st.EDB.RunsFlushed+st.Scratch.RunsFlushed, st.EDB.RowsSpilled+st.Scratch.RowsSpilled; rf > 0 || rs > 0 {
			fmt.Fprintf(os.Stderr,
				"stats: disk %d runs flushed, %d rows spilled, %d runs compacted, %d blocks read\n",
				rf, rs,
				st.EDB.RunsCompacted+st.Scratch.RunsCompacted,
				st.EDB.BlocksRead+st.Scratch.BlocksRead)
		}
		pc := sys.PlanCacheStats()
		fmt.Fprintf(os.Stderr, "stats: plan cache %d hits, %d misses, %d invalidations\n",
			pc.Hits, pc.Misses, pc.Invalidations)
	}
	return nil
}

// parseFsync maps the -fsync flag to a WAL fsync mode.
func parseFsync(s string) (gluenail.FsyncMode, error) {
	switch s {
	case "batch", "":
		return gluenail.FsyncBatch, nil
	case "always":
		return gluenail.FsyncAlways, nil
	case "none", "never":
		return gluenail.FsyncNever, nil
	}
	return 0, fmt.Errorf("-fsync wants batch, always, or none; got %q", s)
}

func answer(sys *gluenail.System, module, goals string) error {
	res, err := sys.QueryIn(module, goals)
	if err != nil {
		return err
	}
	printResult(res)
	return nil
}

func printResult(res *gluenail.Result) {
	if len(res.Vars) == 0 {
		if len(res.Rows) > 0 {
			fmt.Println("true")
		} else {
			fmt.Println("false")
		}
		return
	}
	fmt.Println(strings.Join(res.Vars, "\t"))
	printRows(res.Rows)
	fmt.Printf("(%d answers)\n", len(res.Rows))
}

func printRows(rows [][]gluenail.Value) {
	for _, row := range rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		fmt.Println(strings.Join(parts, "\t"))
	}
}

func repl(sys *gluenail.System, module string) error {
	sc := bufio.NewScanner(os.Stdin)
	fmt.Println("Glue-Nail interactive query loop; enter goal conjunctions, or 'quit'.")
	// Prepared handles per goal text: re-entering a query reuses its
	// compiled procedure (and, through the prepared-plan cache, its
	// physical plans) instead of re-parsing and re-compiling.
	prepared := make(map[string]*gluenail.Prepared)
	for {
		fmt.Print("?- ")
		if !sc.Scan() {
			fmt.Println()
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "exit" {
			return nil
		}
		p, ok := prepared[line]
		if !ok {
			var err error
			p, err = sys.PrepareIn(module, line)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			prepared[line] = p
		}
		res, err := p.Execute()
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		printResult(res)
	}
}
