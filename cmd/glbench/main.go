// Command glbench regenerates the experiment tables recorded in
// EXPERIMENTS.md: one table per quantitative claim in the paper's §5, §9
// and §10. Each table compares the system's mechanism against the baseline
// the paper argues it beats.
//
// Usage:
//
//	glbench [-e E1,E5,...] [-reps n]
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"text/tabwriter"
	"time"

	"gluenail"
	"gluenail/internal/bench"
	"gluenail/internal/server"
	"gluenail/internal/storage"
	"gluenail/internal/storage/disk"
	"gluenail/internal/term"
)

var (
	reps    = flag.Int("reps", 3, "repetitions per measurement (best is reported)")
	workers = flag.Int("workers", 0, "max worker count swept by E10 (0 = GOMAXPROCS)")
	dataDir = flag.String("data-dir", "", "directory for E11's durable stores (default: a temp dir; point at a real disk to measure its fsync cost)")
	fsyncE  = flag.String("fsync", "", "restrict E11 to one WAL fsync mode: always, batch, or none (default: sweep all)")
	cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
	memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")

	// Governor budget armed on E14's governed runs. The defaults are far
	// away on purpose: E14 measures what the always-on cancellation checks
	// cost when nothing ever trips, which is the price every governed
	// production query pays.
	govTimeout = flag.Duration("timeout", time.Hour, "E14: wall-clock deadline armed on governed runs")
	govTuples  = flag.Int64("max-tuples", 1<<40, "E14: tuple budget armed on governed runs")
	govDepth   = flag.Int("max-depth", 0, "E14: recursion-depth limit on governed runs (0 = library default)")
)

func main() {
	sel := flag.String("e", "", "comma-separated experiments to run (default all)")
	flag.Parse()
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "glbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "glbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "glbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live objects before the heap snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "glbench: memprofile:", err)
			}
		}()
	}
	want := map[string]bool{}
	for _, e := range strings.Split(*sel, ",") {
		if e != "" {
			want[strings.ToUpper(e)] = true
		}
	}
	all := []struct {
		id string
		fn func()
	}{
		{"E1", e1}, {"E2", e2}, {"E3", e3}, {"E4", e4}, {"E5", e5},
		{"E6", e6}, {"E7", e7}, {"E8", e8}, {"E9", e9}, {"E10", e10},
		{"E11", e11}, {"E12", e12}, {"E13", e13}, {"E14", e14},
		{"E15", e15}, {"E16", e16}, {"E17", e17}, {"E18", e18}, {"F1", f1}, {"A1", a1},
	}
	ran := 0
	for _, exp := range all {
		if len(want) > 0 && !want[exp.id] {
			continue
		}
		exp.fn()
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "glbench: no experiments matched; use -e E1..E18,F1,A1")
		os.Exit(1)
	}
}

// best times f over reps runs and returns the fastest.
func best(f func()) time.Duration {
	bestD := time.Duration(1<<62 - 1)
	for i := 0; i < *reps; i++ {
		start := time.Now()
		f()
		if d := time.Since(start); d < bestD {
			bestD = d
		}
	}
	return bestD
}

func table(title, claim string, header []string, rows [][]string) {
	fmt.Printf("== %s\n", title)
	fmt.Printf("   paper: %s\n", claim)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "  "+strings.Join(header, "\t"))
	for _, r := range rows {
		fmt.Fprintln(w, "  "+strings.Join(r, "\t"))
	}
	w.Flush()
	fmt.Println()
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000)
}

func ratio(a, b time.Duration) string {
	if a == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", float64(b)/float64(a))
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "glbench:", err)
		os.Exit(1)
	}
}

func e1() {
	var rows [][]string
	for _, n := range []int{10, 50, 100, 500, 1000, 2000} {
		src := bench.SyntheticProgram(n)
		d := best(func() { check(bench.CompileSource(src)) })
		rate := float64(n) / d.Seconds()
		rows = append(rows, []string{
			fmt.Sprint(n), ms(d), fmt.Sprintf("%.0f", rate),
		})
	}
	table("E1: compiler throughput (lex+parse+link+plan)",
		`"compiles about two statements per Mips-second" — expect throughput ~flat in program size`,
		[]string{"statements", "compile ms", "stmts/sec"}, rows)
}

func e2() {
	var rows [][]string
	for _, n := range []int{1000, 5000, 20000} {
		pipe := bench.NewJoinSystem(n, 4)
		mat := bench.NewJoinSystem(n, 4, gluenail.WithMaterializedExecution())
		dp := best(func() { check(bench.RunJoin(pipe)) })
		dm := best(func() { check(bench.RunJoin(mat)) })
		rows = append(rows, []string{
			fmt.Sprint(n), ms(dp), ms(dm), ratio(dp, dm),
			fmt.Sprint(pipe.Stats().Exec.TuplesMaterialized / int64(*reps)),
			fmt.Sprint(mat.Stats().Exec.TuplesMaterialized / int64(*reps)),
		})
	}
	table("E2: pipelined vs fully materialized execution (3-way join)",
		`materializing the supplementary relation "costs an extra load and store for each tuple" (§9)`,
		[]string{"rows/rel", "pipelined ms", "materialized ms", "mat/pipe",
			"tuples stored (pipe)", "tuples stored (mat)"}, rows)
}

func e3() {
	var rows [][]string
	for _, dup := range []int{1, 2, 4, 16} {
		with := bench.NewDupSystem(4000/dup, dup)
		without := bench.NewDupSystem(4000/dup, dup, gluenail.WithoutDupElimination())
		dw := best(func() { check(bench.RunDup(with)) })
		dn := best(func() { check(bench.RunDup(without)) })
		rows = append(rows, []string{
			fmt.Sprint(dup), ms(dw), ms(dn), ratio(dw, dn),
		})
	}
	table("E3: duplicate elimination at pipeline breaks",
		`"removing duplicates early has always been advantageous ... in the worst case [no duplicates] a loss" (§9)`,
		[]string{"dup factor", "dedup ms", "no-dedup ms", "no-dedup/dedup"}, rows)
}

func e4() {
	var rows [][]string
	const nRows, keys = 50000, 500
	for _, q := range []int{1, 2, 4, 16, 64, 256} {
		a := bench.RunSelections(storage.IndexAdaptive, nRows, keys, q)
		n := bench.RunSelections(storage.IndexNever, nRows, keys, q)
		al := bench.RunSelections(storage.IndexAlways, nRows, keys, q)
		rows = append(rows, []string{
			fmt.Sprint(q),
			fmt.Sprint(a.RowsScanned), fmt.Sprint(a.IndexBuilds),
			fmt.Sprint(n.RowsScanned),
			fmt.Sprint(al.RowsScanned), fmt.Sprint(al.IndexBuilds),
		})
	}
	table("E4: adaptive run-time index creation (50k rows, repeated selections)",
		`build an index "after the cumulative cost of selection by scanning reaches the cost of creating the index" (§10)`,
		[]string{"queries", "adaptive rows scanned", "adaptive builds",
			"never-index rows scanned", "always-index rows scanned", "always builds"}, rows)
}

func e5() {
	var rows [][]string
	for _, n := range []int{32, 64, 128} {
		semi := bench.NewTCSystem(bench.ChainEdges(n))
		naive := bench.NewTCSystem(bench.ChainEdges(n), gluenail.WithNaiveEvaluation())
		ds := best(func() { _, err := semi.Query("tc(X,Y)"); check(err) })
		dn := best(func() { _, err := naive.Query("tc(X,Y)"); check(err) })
		rows = append(rows, []string{
			fmt.Sprint(n), ms(ds), ms(dn), ratio(ds, dn),
		})
	}
	table("E5: semi-naive (uniondiff) vs naive recursion (full closure of a chain)",
		`the back end implements uniondiff "to support compiled recursive NAIL! queries" (§10)`,
		[]string{"chain length", "semi-naive ms", "naive ms", "naive/semi"}, rows)
}

func e6() {
	var rows [][]string
	for _, sets := range []int{8, 64, 256} {
		narrowed := bench.NewDispatchSystem(sets, 4, 400)
		runtime := bench.NewDispatchSystem(sets, 4, 400, gluenail.WithoutDispatchNarrowing())
		dn := best(func() { check(bench.RunDispatch(narrowed)) })
		dr := best(func() { check(bench.RunDispatch(runtime)) })
		rows = append(rows, []string{
			fmt.Sprint(sets), ms(dn), ms(dr), ratio(dn, dr),
		})
	}
	table("E6: HiLog predicate-variable dispatch (400 unrelated relations in store)",
		`"much of the predicate selection analysis can be done at compile time" (§5); naive systems check every class at run time (§9)`,
		[]string{"sets", "narrowed ms", "runtime-deref ms", "runtime/narrowed"}, rows)
}

func e7() {
	sys1 := bench.NewSetEqSystem(64, 100)
	sys2 := bench.NewSetEqSystem(64, 100)
	dn := best(func() { check(bench.RunSetEqByName(sys1)) })
	dm := best(func() { check(bench.RunSetEqByMembers(sys2)) })
	table("E7: set equality, name matching vs extensional comparison (64 pairs of 100-element sets)",
		`"much of the time a simple string-string matching suffices to determine equality" (§5.1)`,
		[]string{"by-name ms", "set_eq ms", "set_eq/by-name"},
		[][]string{{ms(dn), ms(dm), ratio(dn, dm)}})
}

func e8() {
	var rows [][]string
	for _, calls := range []int{10, 50} {
		mem := bench.NewTemporariesSystem(40)
		lay := bench.NewTemporariesSystem(40, gluenail.WithLayeredBackend())
		dm := best(func() { check(bench.RunTemporaries(mem, calls)) })
		dl := best(func() { check(bench.RunTemporaries(lay, calls)) })
		st := lay.Stats().Scratch
		rows = append(rows, []string{
			fmt.Sprint(calls), ms(dm), ms(dl), ratio(dm, dl),
			fmt.Sprint(st.LogBytes), fmt.Sprint(st.LatchAcquires),
		})
	}
	table("E8: tailored main-memory back end vs DBMS-layered back end (tc_e temporaries)",
		`building on a relational DBMS is "a mistake ... the system wastes much of its time" protecting short-lived temporaries (§10)`,
		[]string{"proc calls", "tailored ms", "layered ms", "layered/tailored",
			"log bytes", "latch acquires"}, rows)
}

func e9() {
	var rows [][]string
	for _, n := range []int{200, 400, 800} {
		magic := bench.NewTCSystem(bench.RandomEdges(n, n, 7))
		full := bench.NewTCSystem(bench.RandomEdges(n, n, 7), gluenail.WithoutMagicSets())
		dm := best(func() { _, err := magic.Query("tc(1, X)"); check(err) })
		df := best(func() { _, err := full.Query("tc(1, X)"); check(err) })
		rows = append(rows, []string{
			fmt.Sprint(n), ms(dm), ms(df), ratio(dm, df),
		})
	}
	table("E9: magic sets for bound queries (tc(1,X) on sparse random graphs)",
		`bound calls evaluate only the relevant subset (magic templates, §8.2; set-at-a-time calls, §4)`,
		[]string{"nodes", "magic ms", "full+filter ms", "full/magic"}, rows)
}

func e10() {
	maxW := *workers
	if maxW <= 0 {
		maxW = runtime.GOMAXPROCS(0)
	}
	sweep := []int{1}
	for w := 2; w <= maxW; w *= 2 {
		sweep = append(sweep, w)
	}
	var rows [][]string
	var seqD time.Duration
	for _, w := range sweep {
		sys := bench.NewParallelJoinSystem(20000, 4, gluenail.WithParallelism(w))
		d := best(func() { check(bench.RunParJoin(sys)) })
		if w == 1 {
			seqD = d
		}
		rows = append(rows, []string{fmt.Sprint(w), ms(d), ratio(d, seqD)})
	}
	table(fmt.Sprintf("E10: morsel-driven intra-segment parallelism (3-way join + filter, GOMAXPROCS=%d)",
		runtime.GOMAXPROCS(0)),
		"partition segment input into morsels across a worker pool; results stay identical to sequential execution",
		[]string{"workers", "ms", "seq/this"}, rows)
}

// e12 measures the statistics-driven physical planner on a skewed join
// with no constant arguments: the compiler's static greedy scores tie, so
// textual and greedy both scan the big relation, while live row counts
// steer the run-time planner to start from the tiny probe side. Results
// are verified byte-identical across all three orderings before timing.
func e12() {
	const rare, k = 100, 4
	var rows [][]string
	for _, n := range []int{5000, 20000, 80000} {
		var ref string
		for _, mode := range []struct {
			name string
			opts []gluenail.Option
		}{
			{"textual", []gluenail.Option{gluenail.WithoutReordering()}},
			{"greedy", []gluenail.Option{gluenail.WithGreedyOrdering()}},
			{"stats", nil},
		} {
			got, err := bench.SkewJoinResult(bench.NewSkewJoinSystem(n, rare, k, mode.opts...))
			check(err)
			if ref == "" {
				ref = got
			} else if got != ref {
				check(fmt.Errorf("E12: %s ordering changed the join result at n=%d", mode.name, n))
			}
		}
		textual := bench.NewSkewJoinSystem(n, rare, k, gluenail.WithoutReordering())
		greedy := bench.NewSkewJoinSystem(n, rare, k, gluenail.WithGreedyOrdering())
		stats := bench.NewSkewJoinSystem(n, rare, k)
		dt := best(func() { check(bench.RunSkewJoin(textual)) })
		dg := best(func() { check(bench.RunSkewJoin(greedy)) })
		ds := best(func() { check(bench.RunSkewJoin(stats)) })
		rows = append(rows, []string{
			fmt.Sprint(n), ms(dt), ms(dg), ms(ds), ratio(ds, dt),
		})
	}
	table("E12: statistics-driven physical ordering (skewed join, identical results)",
		`§3.1 makes subgoal ordering the central optimisation; static scores cannot tell a 4-row probe from an 80k-row scan — live statistics can`,
		[]string{"big rows", "textual ms", "greedy ms", "stats ms", "textual/stats"}, rows)
}

// e13 measures the hash-first tuple kernels (interned atoms, cached row
// hashes, open-addressing dedup/group/probe tables) against the legacy
// string-key kernels on the dedup-heavy closure + group-by workload.
// Allocations per run are the headline metric — the kernels exist to stop
// materializing a key string per row — and the runs are recorded in
// BENCH_E13.json so CI can track them. All variants must produce
// byte-identical results.
func e13() {
	const n, m, seed = 120, 240, 7
	modes := []struct {
		name string
		opts []gluenail.Option
	}{
		{"hash-first/seq", nil},
		{"hash-first/4-workers", []gluenail.Option{
			gluenail.WithParallelism(4), gluenail.WithParallelThreshold(64),
		}},
		{"string-key/seq", []gluenail.Option{gluenail.WithStringKeyKernels()}},
	}
	type rec struct {
		Name        string `json:"name"`
		NsPerOp     int64  `json:"ns_per_op"`
		AllocsPerOp int64  `json:"allocs_per_op"`
		BytesPerOp  int64  `json:"bytes_per_op"`
	}
	var recs []rec
	var rows [][]string
	var ref string
	for _, mode := range modes {
		sys := bench.NewTCGroupSystem(n, m, seed, mode.opts...)
		check(bench.RunTCGroup(sys))
		got, err := bench.TCGroupResult(sys)
		check(err)
		if ref == "" {
			ref = got
		} else if got != ref {
			check(fmt.Errorf("E13: %s changed the reach relation", mode.name))
		}
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				check(bench.RunTCGroup(sys))
			}
		})
		recs = append(recs, rec{
			Name:        mode.name,
			NsPerOp:     res.NsPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		})
		rows = append(rows, []string{
			mode.name,
			ms(time.Duration(res.NsPerOp())),
			fmt.Sprint(res.AllocsPerOp()),
			fmt.Sprint(res.AllocedBytesPerOp()),
		})
	}
	last := &recs[len(recs)-1]
	rows[len(rows)-1] = append(rows[len(rows)-1],
		fmt.Sprintf("%.2fx", float64(last.AllocsPerOp)/float64(recs[0].AllocsPerOp)))
	for i := range rows[:len(rows)-1] {
		rows[i] = append(rows[i], "-")
	}
	table("E13: hash-first hot-path kernels (closure + group-by, identical results)",
		`§10 reports evaluation cost dominated by low-level tuple operations; encoding a key string per row for dedup/group/probe was exactly such a cost`,
		[]string{"kernels", "time/op", "allocs/op", "bytes/op", "allocs vs hash-first/seq"}, rows)
	out := struct {
		Experiment string `json:"experiment"`
		Workload   string `json:"workload"`
		Modes      []rec  `json:"modes"`
	}{
		Experiment: "E13 hash-first hot-path kernels",
		Workload:   fmt.Sprintf("transitive closure + group_by count, %d string nodes, %d edges", n, m),
		Modes:      recs,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	check(err)
	check(os.WriteFile("BENCH_E13.json", append(data, '\n'), 0o644))
	fmt.Println("   wrote BENCH_E13.json")
}

// e14SpinSrc is an infinite repeat/until whose body re-derives a cross
// product — wide enough to fan out over morsel workers — used to measure
// how quickly a wall-clock deadline actually stops a runaway program.
const e14SpinSrc = `
edb e(X), big(X,Y);

proc spin(:)
  repeat
    big(X,Y) := e(X) & e(Y).
  until empty(e(_));
  return(:) := e(_).
end
`

// e14 measures the execution governor two ways. Overhead: the E13
// closure + group-by workload run ungoverned versus under a never-firing
// deadline + tuple budget (-timeout/-max-tuples/-max-depth set the armed
// budget), which prices the per-instruction and per-8192-row cancellation
// checks; the target recorded in EXPERIMENTS.md is <2%. Abort latency: an
// infinite repeat/until loop under a short deadline must return
// ErrTimeout within 2x the deadline at every worker count 1-8 — the
// acceptance bound for cooperative cancellation granularity.
func e14() {
	const n, m, seed = 120, 240, 7
	budget := gluenail.Budget{
		Timeout:   *govTimeout,
		MaxTuples: *govTuples,
		MaxDepth:  *govDepth,
	}
	par := []gluenail.Option{
		gluenail.WithParallelism(4), gluenail.WithParallelThreshold(64),
	}
	modes := []struct {
		name     string
		governed bool
		opts     []gluenail.Option
	}{
		{"seq/ungoverned", false, nil},
		{"seq/governed", true, []gluenail.Option{gluenail.WithBudget(budget)}},
		{"4-workers/ungoverned", false, par},
		{"4-workers/governed", true,
			append(append([]gluenail.Option{}, par...), gluenail.WithBudget(budget))},
	}
	type rec struct {
		Name        string  `json:"name"`
		NsPerOp     int64   `json:"ns_per_op"`
		OverheadPct float64 `json:"overhead_pct_vs_ungoverned"`
	}
	var recs []rec
	var rows [][]string
	var ref string
	var baseNs int64
	for _, mode := range modes {
		sys := bench.NewTCGroupSystem(n, m, seed, mode.opts...)
		check(bench.RunTCGroup(sys))
		got, err := bench.TCGroupResult(sys)
		check(err)
		if ref == "" {
			ref = got
		} else if got != ref {
			check(fmt.Errorf("E14: %s changed the reach relation", mode.name))
		}
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				check(bench.RunTCGroup(sys))
			}
		})
		r := rec{Name: mode.name, NsPerOp: res.NsPerOp()}
		over := "-"
		if mode.governed {
			r.OverheadPct = 100 * (float64(r.NsPerOp) - float64(baseNs)) / float64(baseNs)
			over = fmt.Sprintf("%+.2f%%", r.OverheadPct)
		} else {
			baseNs = r.NsPerOp
		}
		recs = append(recs, r)
		rows = append(rows, []string{
			mode.name, ms(time.Duration(r.NsPerOp)), over,
		})
	}
	table("E14: governor overhead on the E13 workload (armed, never fires)",
		`a production governor is only free if its cancellation checks vanish against tuple work; target <2% overhead`,
		[]string{"mode", "time/op", "overhead vs ungoverned"}, rows)

	// Abort latency: the governor's cooperative checks bound how long a
	// runaway loop survives past its deadline.
	const smokeDeadline = 150 * time.Millisecond
	type smokeRec struct {
		Workers    int     `json:"workers"`
		DeadlineMs float64 `json:"deadline_ms"`
		ElapsedMs  float64 `json:"elapsed_ms"`
		Within2x   bool    `json:"within_2x"`
	}
	var smoke []smokeRec
	var srows [][]string
	for w := 1; w <= 8; w++ {
		sys := gluenail.New(
			gluenail.WithBudget(gluenail.Budget{Timeout: smokeDeadline, MaxLoopIters: -1}),
			gluenail.WithParallelism(w),
			gluenail.WithParallelThreshold(1))
		check(sys.Load(e14SpinSrc))
		var es [][]any
		for i := int64(0); i < 64; i++ {
			es = append(es, []any{i})
		}
		check(sys.Assert("e", es...))
		start := time.Now()
		_, err := sys.Call("main", "spin", []any{})
		elapsed := time.Since(start)
		if !errors.Is(err, gluenail.ErrTimeout) {
			check(fmt.Errorf("E14 smoke: want ErrTimeout at %d workers, got %v", w, err))
		}
		sr := smokeRec{
			Workers:    w,
			DeadlineMs: float64(smokeDeadline) / 1e6,
			ElapsedMs:  float64(elapsed) / 1e6,
			Within2x:   elapsed <= 2*smokeDeadline,
		}
		smoke = append(smoke, sr)
		srows = append(srows, []string{
			fmt.Sprint(w), ms(smokeDeadline), ms(elapsed), fmt.Sprint(sr.Within2x),
		})
	}
	table("E14b: timeout abort latency on an infinite repeat/until loop",
		`a deadline is only a guarantee if cooperative checks fire often enough; acceptance bound is abort within 2x the deadline at 1-8 workers`,
		[]string{"workers", "deadline", "aborted after", "within 2x"}, srows)

	out := struct {
		Experiment string     `json:"experiment"`
		Workload   string     `json:"workload"`
		TargetPct  float64    `json:"target_overhead_pct"`
		Modes      []rec      `json:"modes"`
		Smoke      []smokeRec `json:"timeout_smoke"`
	}{
		Experiment: "E14 execution governor overhead + abort latency",
		Workload: fmt.Sprintf(
			"transitive closure + group_by count, %d string nodes, %d edges; smoke: infinite cross-product repeat at %v deadline",
			n, m, smokeDeadline),
		TargetPct: 2,
		Modes:     recs,
		Smoke:     smoke,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	check(err)
	check(os.WriteFile("BENCH_E14.json", append(data, '\n'), 0o644))
	fmt.Println("   wrote BENCH_E14.json")
}

// e15 measures the repeated-small-query hot path: the same bound
// conjunctive query (5-relation star join with range filters) issued over
// and over against a stable EDB, the workload the prepared-plan cache and
// the vectorized batch kernels exist for. The 2x2 ablation grid isolates
// each half: plan cache on/off x batch kernels on/off, with "neither"
// matching the pre-cache baseline. Every mode must report the same result
// cardinality, and the cached modes must show a steady-state hit rate
// (zero misses during measurement). Recorded in BENCH_E15.json for CI.
func e15() {
	const customers, ordersPer, itemsPer = 512, 8, 6
	const warmups = 3
	modes := []struct {
		name string
		opts []gluenail.Option
	}{
		{"cache+batch", nil},
		{"cache-only", []gluenail.Option{gluenail.WithBatchKernels(false)}},
		{"batch-only", []gluenail.Option{gluenail.WithPlanCache(false)}},
		{"neither", []gluenail.Option{
			gluenail.WithPlanCache(false), gluenail.WithBatchKernels(false),
		}},
	}
	type rec struct {
		Name        string `json:"name"`
		NsPerOp     int64  `json:"ns_per_op"`
		AllocsPerOp int64  `json:"allocs_per_op"`
		BytesPerOp  int64  `json:"bytes_per_op"`
		CacheHits   int64  `json:"plan_cache_hits"`
		CacheMisses int64  `json:"plan_cache_misses"`
	}
	var recs []rec
	var rows [][]string
	ref := -1
	for _, mode := range modes {
		opts := append([]gluenail.Option{gluenail.WithParallelism(1)}, mode.opts...)
		sys := bench.NewRepeatedQuerySystem(customers, ordersPer, itemsPer, opts...)
		for w := 0; w < warmups; w++ {
			n, err := bench.RunRepeatedQuery(sys)
			check(err)
			if n == 0 {
				check(fmt.Errorf("E15: %s produced no rows", mode.name))
			}
			if ref < 0 {
				ref = n
			} else if n != ref {
				check(fmt.Errorf("E15: %s returned %d rows, want %d", mode.name, n, ref))
			}
		}
		before := sys.PlanCacheStats()
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := bench.RunRepeatedQuery(sys); err != nil {
					b.Fatal(err)
				}
			}
		})
		after := sys.PlanCacheStats()
		cached := mode.name == "cache+batch" || mode.name == "cache-only"
		if cached && after.Misses != before.Misses {
			check(fmt.Errorf("E15: %s missed the warm plan cache %d times",
				mode.name, after.Misses-before.Misses))
		}
		recs = append(recs, rec{
			Name:        mode.name,
			NsPerOp:     res.NsPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			CacheHits:   after.Hits,
			CacheMisses: after.Misses,
		})
		rows = append(rows, []string{
			mode.name,
			ms(time.Duration(res.NsPerOp())),
			fmt.Sprint(res.AllocsPerOp()),
			fmt.Sprint(res.AllocedBytesPerOp()),
			ratio(time.Duration(recs[0].NsPerOp), time.Duration(res.NsPerOp())),
		})
	}
	table("E15: repeated-query hot path (plan cache x batch kernels, identical results)",
		`the paper's compiled-query model assumes a query is planned once and run many times; caching physical plans and batching the inner loops makes the repeated run pay only execution`,
		[]string{"mode", "time/op", "allocs/op", "bytes/op", "vs cache+batch"}, rows)
	out := struct {
		Experiment string `json:"experiment"`
		Workload   string `json:"workload"`
		Modes      []rec  `json:"modes"`
	}{
		Experiment: "E15 repeated-query hot path",
		Workload: fmt.Sprintf("bound 5-relation star query repeated on a stable EDB, %d customers x %d orders x %d items",
			customers, ordersPer, itemsPer),
		Modes: recs,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	check(err)
	check(os.WriteFile("BENCH_E15.json", append(data, '\n'), 0o644))
	fmt.Println("   wrote BENCH_E15.json")
}

// e16 measures the multi-session server: sustained throughput and tail
// latency for a mixed read/write workload over the wire, swept from 1 to
// 64 concurrent reader sessions while one writer session continuously
// churns a disjoint region of the EDB. Every reader runs inside a read
// transaction (begin/query.../end) and byte-compares each answer of a
// recursive query against its first — any difference is an isolation
// violation, and a single one fails the run. The claim under test: MVCC
// snapshots keep readers byte-stable and writers un-blocked, so read
// p99 stays flat as the writer commits throughout. Recorded in
// BENCH_E16.json for CI.
func e16() {
	const (
		chain      = 64     // reader component: tc(1,X) yields `chain` rows
		writerBase = 100000 // writer component, disjoint from the readers'
		measure    = 400 * time.Millisecond
	)

	sys := gluenail.New()
	check(sys.Load("edb edge(X,Y); tc(X,Y) :- edge(X,Y). tc(X,Z) :- tc(X,Y) & edge(Y,Z)."))
	edges := make([][]any, chain)
	for i := range edges {
		edges[i] = []any{i + 1, i + 2}
	}
	check(sys.Assert("edge", edges...))

	srv, err := server.New(server.Config{System: sys})
	check(err)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	go srv.Serve(lis)
	addr := lis.Addr().String()

	render := func(res *server.QueryResult) string {
		var sb strings.Builder
		for _, row := range res.Rows {
			for _, v := range row {
				sb.WriteString(v.String())
				sb.WriteByte(' ')
			}
			sb.WriteByte('\n')
		}
		return sb.String()
	}

	type rec struct {
		Sessions   int     `json:"reader_sessions"`
		ReadQPS    float64 `json:"read_qps"`
		WriteQPS   float64 `json:"write_qps"`
		P50Micros  int64   `json:"read_p50_us"`
		P99Micros  int64   `json:"read_p99_us"`
		Violations int64   `json:"isolation_violations"`
	}
	var recs []rec
	var rows [][]string
	for _, n := range []int{1, 4, 16, 64} {
		stop := make(chan struct{})
		var wg sync.WaitGroup
		var reads, writes, violations atomic.Int64
		latCh := make(chan []time.Duration, n)

		for r := 0; r < n; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				c, err := server.Dial(addr, 5*time.Second)
				check(err)
				defer c.Close()
				if _, err := c.Begin(); err != nil {
					check(err)
				}
				base, err := c.Query("tc(1,X)")
				check(err)
				want := render(base)
				var lats []time.Duration
				for {
					select {
					case <-stop:
						check(c.End())
						latCh <- lats
						return
					default:
					}
					t0 := time.Now()
					res, err := c.Query("tc(1,X)")
					check(err)
					lats = append(lats, time.Since(t0))
					reads.Add(1)
					if render(res) != want {
						violations.Add(1)
					}
				}
			}()
		}
		// The writer churns its own component: assert a fresh edge, and
		// periodically retract the batch so the EDB stays bounded.
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := server.Dial(addr, 5*time.Second)
			check(err)
			defer c.Close()
			for i := int64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := writerBase + i%256
				if err := c.Assert("edge", []any{k, k + 1}); err != nil {
					check(err)
				}
				writes.Add(1)
				if i%256 == 255 {
					for j := int64(0); j < 256; j++ {
						if err := c.Retract("edge", []any{writerBase + j, writerBase + j + 1}); err != nil {
							check(err)
						}
						writes.Add(1)
					}
				}
			}
		}()

		start := time.Now()
		time.Sleep(measure)
		close(stop)
		wg.Wait()
		elapsed := time.Since(start)

		var all []time.Duration
		for r := 0; r < n; r++ {
			all = append(all, <-latCh...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		pct := func(p float64) time.Duration {
			if len(all) == 0 {
				return 0
			}
			i := int(p * float64(len(all)-1))
			return all[i]
		}
		if v := violations.Load(); v > 0 {
			check(fmt.Errorf("E16: %d isolation violations at %d sessions", v, n))
		}
		r := rec{
			Sessions:   n,
			ReadQPS:    float64(reads.Load()) / elapsed.Seconds(),
			WriteQPS:   float64(writes.Load()) / elapsed.Seconds(),
			P50Micros:  pct(0.50).Microseconds(),
			P99Micros:  pct(0.99).Microseconds(),
			Violations: violations.Load(),
		}
		recs = append(recs, r)
		rows = append(rows, []string{
			fmt.Sprint(n),
			fmt.Sprintf("%.0f", r.ReadQPS),
			fmt.Sprintf("%.3f", float64(r.P50Micros)/1000),
			fmt.Sprintf("%.3f", float64(r.P99Micros)/1000),
			fmt.Sprintf("%.0f", r.WriteQPS),
			fmt.Sprint(r.Violations),
		})
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	check(srv.Shutdown(ctx))
	cancel()

	table(fmt.Sprintf("E16: multi-session server, snapshot-isolated reads under a live writer (GOMAXPROCS=%d)",
		runtime.GOMAXPROCS(0)),
		`a deductive database serving many sessions must keep readers consistent without blocking them on updates; MVCC snapshots give every read transaction a byte-stable view while the writer commits freely`,
		[]string{"reader sessions", "read qps", "p50 ms", "p99 ms", "write qps", "violations"}, rows)
	out := struct {
		Experiment string `json:"experiment"`
		Workload   string `json:"workload"`
		Scales     []rec  `json:"scales"`
	}{
		Experiment: "E16 multi-session server under mixed read/write load",
		Workload: fmt.Sprintf("recursive tc(1,X) over a %d-edge chain inside pinned read transactions, byte-compared per query, with one writer session churning a disjoint component; %s measurement window per scale",
			chain, measure),
		Scales: recs,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	check(err)
	check(os.WriteFile("BENCH_E16.json", append(data, '\n'), 0o644))
	fmt.Println("   wrote BENCH_E16.json")
}

// e17 measures what leaving main memory costs: the same recursive
// transitive closure on the main-memory engine, on the disk engine
// (EDB in on-disk runs with a block cache), and out-of-core (scratch
// tables capped at a tenth of the working set, spilling to disk runs
// mid-iteration instead of aborting on the cardinality budget). All
// three produce byte-identical answers; the table is the throughput
// degradation. Recorded in BENCH_E17.json for CI.
func e17() {
	const n = 2000
	edges := make([][]any, n)
	for i := range edges {
		edges[i] = []any{i + 1, i + 2}
	}
	budget := n / 10

	type rec struct {
		Config      string  `json:"config"`
		Millis      float64 `json:"ms"`
		Rows        int     `json:"rows"`
		MemRatio    float64 `json:"vs_mem"`
		RunsFlushed int64   `json:"runs_flushed"`
		RowsSpilled int64   `json:"rows_spilled"`
		BlocksRead  int64   `json:"blocks_read"`
	}
	run := func(label string, ckpt bool, opts ...gluenail.Option) rec {
		var r rec
		r.Config = label
		d := best(func() {
			sys := bench.NewTCSystem(edges, opts...)
			if ckpt {
				// Force the disk engine's memtables into on-disk runs, so
				// the measured query reads through the block cache rather
				// than an all-resident memtable.
				check(sys.Checkpoint())
			}
			res, err := sys.Query("tc(1,X)")
			check(err)
			r.Rows = len(res.Rows)
			st := sys.Stats()
			r.RunsFlushed = st.EDB.RunsFlushed + st.Scratch.RunsFlushed
			r.RowsSpilled = st.EDB.RowsSpilled + st.Scratch.RowsSpilled
			r.BlocksRead = st.EDB.BlocksRead + st.Scratch.BlocksRead
			check(sys.Close())
		})
		r.Millis = float64(d.Microseconds()) / 1000
		return r
	}

	base, err := os.MkdirTemp("", "glbench-e17-")
	check(err)
	defer os.RemoveAll(base)

	recs := []rec{
		run("mem", false),
		run("disk", true,
			gluenail.WithBackend("disk"),
			gluenail.WithDurability(filepath.Join(base, "data"))),
		run(fmt.Sprintf("spill (budget %d rows)", budget), false,
			gluenail.WithSpill(filepath.Join(base, "spill"), 0),
			gluenail.WithBudget(gluenail.Budget{MaxRelRows: budget})),
	}
	if recs[1].Rows != recs[0].Rows || recs[2].Rows != recs[0].Rows {
		check(fmt.Errorf("E17: row counts diverge across engines: %d / %d / %d",
			recs[0].Rows, recs[1].Rows, recs[2].Rows))
	}
	var rows [][]string
	for i := range recs {
		recs[i].MemRatio = recs[i].Millis / recs[0].Millis
		rows = append(rows, []string{recs[i].Config,
			fmt.Sprintf("%.3f", recs[i].Millis),
			fmt.Sprint(recs[i].Rows),
			fmt.Sprintf("%.2f", recs[i].MemRatio),
			fmt.Sprint(recs[i].RunsFlushed),
			fmt.Sprint(recs[i].RowsSpilled),
			fmt.Sprint(recs[i].BlocksRead)})
	}
	table(fmt.Sprintf("E17: storage engines & out-of-core execution, tc over a %d-edge chain", n),
		"the tailored back end is main-memory (§6), but the same evaluator runs on disk-resident relations and spills scratch tables past a memory budget — identical answers, bounded slowdown",
		[]string{"engine", "ms", "tc rows", "vs mem", "runs", "rows spilled", "blocks read"}, rows)

	out := struct {
		Experiment string `json:"experiment"`
		Workload   string `json:"workload"`
		Configs    []rec  `json:"configs"`
	}{
		Experiment: "E17 storage-engine throughput: mem vs disk vs out-of-core spill",
		Workload: fmt.Sprintf("tc(1,X) over a %d-edge chain; spill config caps scratch relations at %d in-memory rows (a tenth of the working set)",
			n, budget),
		Configs: recs,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	check(err)
	check(os.WriteFile("BENCH_E17.json", append(data, '\n'), 0o644))
	fmt.Println("   wrote BENCH_E17.json")
}

func a1() {
	var rows [][]string
	for _, n := range []int{500, 1000} {
		ordered := bench.NewReorderSystem(n)
		source := bench.NewReorderSystem(n, gluenail.WithoutReordering())
		do := best(func() { check(bench.RunReorder(ordered)) })
		ds := best(func() { check(bench.RunReorder(source)) })
		rows = append(rows, []string{fmt.Sprint(n), ms(do), ms(ds), ratio(do, ds)})
	}
	table("A1 (ablation): non-fixed subgoal reordering",
		`"A Glue system is free to reorder the non-fixed subgoals" (§3.1): a selective constant-argument lookup moves ahead of an unselective scan`,
		[]string{"rows", "reordered ms", "source-order ms", "source/reordered"}, rows)
}

// e11 measures what durability costs the execution model the paper
// defends: statement throughput with the WAL off, and with the WAL on
// under each fsync policy. Each measurement runs the same EDB-insert
// loop against a fresh store.
func e11() {
	base := *dataDir
	if base == "" {
		var err error
		base, err = os.MkdirTemp("", "glbench-e11-")
		check(err)
		defer os.RemoveAll(base)
	}
	const n = 1500
	type mode struct {
		label string
		dir   string
		fsync gluenail.FsyncMode
	}
	modes := []mode{{"wal off", "", 0}}
	for _, m := range []mode{
		{"wal, fsync=none", "none", gluenail.FsyncNever},
		{"wal, fsync=batch", "batch", gluenail.FsyncBatch},
		{"wal, fsync=always", "always", gluenail.FsyncAlways},
	} {
		if *fsyncE == "" || *fsyncE == m.dir {
			m.dir = filepath.Join(base, m.dir)
			modes = append(modes, m)
		}
	}
	var rows [][]string
	var off time.Duration
	for _, m := range modes {
		var stmts int64
		d := best(func() {
			sys, err := bench.NewDurableSystem(m.dir, m.fsync)
			check(err)
			check(bench.RunDurable(sys, n))
			stmts = sys.Stats().Exec.StmtsExecuted
			check(sys.Close())
		})
		if m.dir == "" {
			off = d
		}
		perSec := float64(stmts) / d.Seconds()
		rows = append(rows, []string{m.label, ms(d),
			fmt.Sprintf("%.0f", perSec), ratio(off, d)})
	}
	table(fmt.Sprintf("E11: durable EDB (write-ahead log), %d-iteration insert loop", n),
		"the tailored back end is strictly main-memory (§6); the WAL adds crash durability at statement boundaries without giving that model up",
		[]string{"mode", "ms", "stmts/sec", "off/this"}, rows)
}

func f1() {
	var rows [][]string
	for _, n := range []int{1000, 10000} {
		r := bench.NewCadRun(n)
		var key string
		d := best(func() {
			var err error
			key, err = r.Select()
			check(err)
		})
		rows = append(rows, []string{fmt.Sprint(n), ms(d), key})
	}
	table("F1: Figure 1 micro-CAD select (scripted reject-then-accept interaction)",
		"the paper's complete worked example runs as written",
		[]string{"elements", "select ms", "chosen"}, rows)
}

// e18 measures the fast-disk-engine additions: (a) query throughput when
// the working set no longer fits the block cache, with compression on and
// off; (b) cold-start membership-miss probes with and without per-run
// bloom filters; (c) durable ingest through the WAL versus the direct
// bulk path; (d) reopen time as the EDB grows (footer-only run opens make
// it a function of run count, not row count).
func e18() {
	base, err := os.MkdirTemp("", "glbench-e18-")
	check(err)
	defer os.RemoveAll(base)

	// (a) tc over a chain whose decoded blocks outsize a deliberately tiny
	// block cache: every iteration of the closure re-reads evicted blocks.
	const n = 4000
	edges := make([][]any, n)
	for i := range edges {
		edges[i] = []any{i + 1, i + 2}
	}
	type qrec struct {
		Config     string  `json:"config"`
		Millis     float64 `json:"ms"`
		Rows       int     `json:"rows"`
		MemRatio   float64 `json:"vs_mem"`
		BlocksRead int64   `json:"blocks_read"`
		CacheHits  int64   `json:"cache_hits"`
	}
	qrun := func(label string, ckpt bool, opts ...gluenail.Option) qrec {
		var r qrec
		r.Config = label
		d := best(func() {
			sys := bench.NewTCSystem(edges, opts...)
			if ckpt {
				check(sys.Checkpoint())
			}
			res, err := sys.Query("tc(1,X)")
			check(err)
			r.Rows = len(res.Rows)
			st := sys.Stats()
			r.BlocksRead = st.EDB.BlocksRead + st.Scratch.BlocksRead
			r.CacheHits = st.EDB.CacheHits + st.Scratch.CacheHits
			check(sys.Close())
		})
		r.Millis = float64(d.Microseconds()) / 1000
		return r
	}
	qrecs := []qrec{
		qrun("mem", false),
		qrun("disk packed, 8-block cache", true,
			gluenail.WithBackend("disk"),
			gluenail.WithBlockCache(8),
			gluenail.WithDurability(filepath.Join(base, "q-packed"))),
		qrun("disk raw, 8-block cache", true,
			gluenail.WithBackend("disk"),
			gluenail.WithBlockCache(8),
			gluenail.WithBlockCompression(false),
			gluenail.WithDurability(filepath.Join(base, "q-raw"))),
	}
	var qrows [][]string
	for i := range qrecs {
		qrecs[i].MemRatio = qrecs[i].Millis / qrecs[0].Millis
		if qrecs[i].Rows != qrecs[0].Rows {
			check(fmt.Errorf("E18: row counts diverge: %d vs %d", qrecs[i].Rows, qrecs[0].Rows))
		}
		qrows = append(qrows, []string{qrecs[i].Config,
			fmt.Sprintf("%.3f", qrecs[i].Millis),
			fmt.Sprint(qrecs[i].Rows),
			fmt.Sprintf("%.2f", qrecs[i].MemRatio),
			fmt.Sprint(qrecs[i].BlocksRead),
			fmt.Sprint(qrecs[i].CacheHits)})
	}
	table(fmt.Sprintf("E18a: query past the block cache, tc over a %d-edge chain", n),
		"a cache an order of magnitude smaller than the working set forces re-reads every closure iteration; packed blocks and raw blocks answer identically",
		[]string{"engine", "ms", "tc rows", "vs mem", "blocks read", "cache hits"}, qrows)

	// (b) cold-start membership misses: a reopened multi-run store is
	// probed for absent keys. Without blooms every probe must load each
	// run's chain index before it can say no; with them the probe ends at
	// an in-memory filter.
	const probeRows, probesPerOpen = 100000, 5
	probeDir := filepath.Join(base, "probe")
	pst, err := disk.Open(probeDir, disk.Options{FlushRows: 4096, NoCompactor: true})
	check(err)
	prel := pst.Ensure(term.Intern("edge"), 2)
	for i := 0; i < probeRows; i++ {
		prel.Insert(term.Tuple{term.NewInt(int64(i)), term.NewInt(int64(i + 1))})
	}
	check(pst.FlushBase())
	check(pst.Close())
	type mrec struct {
		Config      string  `json:"config"`
		MicrosProbe float64 `json:"us_per_probe"`
		RunReads    int64   `json:"run_reads"`
		BloomSkips  int64   `json:"bloom_skips"`
	}
	mrun := func(label string, o disk.Options) mrec {
		var r mrec
		r.Config = label
		d := best(func() {
			s, err := disk.Open(probeDir, o)
			check(err)
			rel, ok := s.Get(term.Intern("edge"), 2)
			if !ok {
				check(fmt.Errorf("E18: probe relation missing"))
			}
			for i := 0; i < probesPerOpen; i++ {
				if rel.Contains(term.Tuple{term.NewInt(int64(probeRows + 7*i + 1)), term.NewInt(0)}) {
					check(fmt.Errorf("E18: absent key reported present"))
				}
			}
			st := s.Stats()
			r.RunReads = st.RunIndexLoads + st.BlocksRead
			r.BloomSkips = st.BloomSkips
			check(s.Close())
		})
		r.MicrosProbe = float64(d.Nanoseconds()) / 1000 / probesPerOpen
		return r
	}
	mrecs := []mrec{
		mrun("blooms", disk.Options{NoCompactor: true}),
		mrun("no blooms", disk.Options{NoCompactor: true, NoBloom: true}),
	}
	missRatio := float64(mrecs[1].RunReads) / float64(max64(mrecs[0].RunReads, 1))
	table(fmt.Sprintf("E18b: cold-start membership misses, %d probes against a %d-row store", probesPerOpen, probeRows),
		"per-run bloom filters answer miss probes from memory; the ablation pays a chain-index load per run before it can say no",
		[]string{"config", "µs/probe (incl. open)", "run reads", "bloom skips"},
		[][]string{
			{mrecs[0].Config, fmt.Sprintf("%.1f", mrecs[0].MicrosProbe), fmt.Sprint(mrecs[0].RunReads), fmt.Sprint(mrecs[0].BloomSkips)},
			{mrecs[1].Config, fmt.Sprintf("%.1f", mrecs[1].MicrosProbe), fmt.Sprint(mrecs[1].RunReads), fmt.Sprint(mrecs[1].BloomSkips)},
		})

	// (c) durable ingest: the same rows through per-statement WAL commits
	// versus one statement large enough to take the direct bulk path.
	const ingestRows, walChunk = 327680, 1024
	type irec struct {
		Config   string  `json:"config"`
		Millis   float64 `json:"ms"`
		BulkRows int64   `json:"bulk_rows"`
		Speedup  float64 `json:"vs_wal"`
	}
	irun := func(label string, chunk int) irec {
		var r irec
		r.Config = label
		// Data synthesis stays outside the measurement: the experiment
		// times the ingest paths, not building the batch.
		var chunks [][][]any
		for lo := 0; lo < ingestRows; lo += chunk {
			rows := make([][]any, chunk)
			for j := range rows {
				rows[j] = []any{lo + j, lo + j + 1}
			}
			chunks = append(chunks, rows)
		}
		d := best(func() {
			dir, err := os.MkdirTemp(base, "ingest-")
			check(err)
			sys, err := gluenail.Open(dir,
				gluenail.WithBackend("disk"),
				gluenail.WithFsync(gluenail.FsyncAlways))
			check(err)
			check(sys.Load(`edb edge(X,Y);`))
			for _, rows := range chunks {
				check(sys.Assert("edge", rows...))
			}
			check(sys.Checkpoint())
			r.BulkRows = sys.Stats().EDB.BulkRows
			check(sys.Close())
		})
		r.Millis = float64(d.Microseconds()) / 1000
		return r
	}
	irecs := []irec{
		irun(fmt.Sprintf("WAL, %d-row statements", walChunk), walChunk),
		irun("bulk, one statement", ingestRows),
	}
	if irecs[0].BulkRows != 0 {
		check(fmt.Errorf("E18: WAL config took the bulk path (%d rows)", irecs[0].BulkRows))
	}
	if irecs[1].BulkRows == 0 {
		check(fmt.Errorf("E18: bulk config never took the bulk path"))
	}
	irecs[0].Speedup = 1
	irecs[1].Speedup = irecs[0].Millis / irecs[1].Millis
	table(fmt.Sprintf("E18c: durable ingest of %d rows, fsync per statement", ingestRows),
		"a batch past the bulk threshold builds fsynced runs directly and makes the manifest its durability point, skipping the WAL's journal-then-flush double write",
		[]string{"path", "ms", "bulk rows", "speedup"},
		[][]string{
			{irecs[0].Config, fmt.Sprintf("%.1f", irecs[0].Millis), fmt.Sprint(irecs[0].BulkRows), "1.00"},
			{irecs[1].Config, fmt.Sprintf("%.1f", irecs[1].Millis), fmt.Sprint(irecs[1].BulkRows), fmt.Sprintf("%.2f", irecs[1].Speedup)},
		})

	// (d) reopen cost versus EDB size: RUN2 opens read a trailer and
	// footer per run and the manifest's digests — no tuple bytes — so
	// reopen scales with run count, not row count.
	type rrec struct {
		Rows        int     `json:"rows"`
		Runs        int     `json:"runs"`
		OpenMillis  float64 `json:"open_ms"`
		MicrosPer1k float64 `json:"us_per_1k_rows"`
	}
	var rrecs []rrec
	var rrows [][]string
	for _, sz := range []int{40960, 163840, 655360} {
		dir := filepath.Join(base, fmt.Sprintf("reopen-%d", sz))
		s, err := disk.Open(dir, disk.Options{NoCompactor: true})
		check(err)
		rel := s.Ensure(term.Intern("edge"), 2)
		for i := 0; i < sz; i++ {
			rel.Insert(term.Tuple{term.NewInt(int64(i)), term.NewInt(int64(i + 1))})
		}
		check(s.FlushBase())
		check(s.Close())
		d := best(func() {
			s2, err := disk.Open(dir, disk.Options{NoCompactor: true})
			check(err)
			r2, _ := s2.Get(term.Intern("edge"), 2)
			if r2.Len() != sz {
				check(fmt.Errorf("E18: reopen of %d-row store sees %d rows", sz, r2.Len()))
			}
			check(s2.Close())
		})
		rec := rrec{
			Rows:        sz,
			Runs:        (sz + 32767) / 32768,
			OpenMillis:  float64(d.Microseconds()) / 1000,
			MicrosPer1k: float64(d.Nanoseconds()) / 1000 / (float64(sz) / 1000),
		}
		rrecs = append(rrecs, rec)
		rrows = append(rrows, []string{fmt.Sprint(rec.Rows), fmt.Sprint(rec.Runs),
			fmt.Sprintf("%.3f", rec.OpenMillis), fmt.Sprintf("%.2f", rec.MicrosPer1k)})
	}
	table("E18d: reopen time vs EDB size",
		"footer-only run opens plus persisted manifest digests keep reopen sublinear in rows: per-row cost falls as the store grows",
		[]string{"rows", "runs", "open ms", "µs per 1k rows"}, rrows)

	out := struct {
		Experiment string  `json:"experiment"`
		CachePress []qrec  `json:"cache_pressure"`
		MissProbes []mrec  `json:"membership_misses"`
		MissRatio  float64 `json:"miss_read_ratio"`
		Ingest     []irec  `json:"ingest"`
		Reopen     []rrec  `json:"reopen"`
	}{
		Experiment: "E18 fast disk engine: block cache pressure, bloom misses, bulk ingest, reopen scaling",
		CachePress: qrecs,
		MissProbes: mrecs,
		MissRatio:  missRatio,
		Ingest:     irecs,
		Reopen:     rrecs,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	check(err)
	check(os.WriteFile("BENCH_E18.json", append(data, '\n'), 0o644))
	fmt.Println("   wrote BENCH_E18.json")
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
