// Command nailc shows the NAIL!-to-Glue compilation described in the paper:
// given source files, a NAIL! predicate, and a binding pattern, it prints
// the Glue procedure the system generates for that call — the semi-naive
// loops, delta relations, and (for bound patterns) magic-set seeding.
//
// Usage:
//
//	nailc [-module m] [-adorn bf] [-naive] [-no-magic] pred file.glue...
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gluenail/internal/ast"
	"gluenail/internal/modsys"
	"gluenail/internal/nail"
	"gluenail/internal/parser"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nailc:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		module  = flag.String("module", "main", "module defining the predicate")
		adorn   = flag.String("adorn", "", "binding pattern, e.g. bf (default all-free)")
		naive   = flag.Bool("naive", false, "naive instead of semi-naive evaluation")
		noMagic = flag.Bool("no-magic", false, "disable magic-set rewriting")
	)
	flag.Parse()
	if flag.NArg() < 2 {
		return fmt.Errorf("usage: nailc [flags] pred file.glue...")
	}
	pred := flag.Arg(0)
	var srcs []string
	for _, path := range flag.Args()[1:] {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		srcs = append(srcs, string(data))
	}
	prog, err := parser.Parse(strings.Join(srcs, "\n"))
	if err != nil {
		return err
	}
	for _, m := range prog.Modules {
		modsys.ExtractEDBFacts(m) // facts are data, not rules
	}
	lp, err := modsys.Link(prog)
	if err != nil {
		return err
	}
	sym := lp.Resolve(*module, pred)
	if sym == nil {
		return fmt.Errorf("no predicate %s in module %s", pred, *module)
	}
	if sym.Class != modsys.ClassNail {
		return fmt.Errorf("%s is a %s, not a NAIL! predicate", pred, sym.Class)
	}
	arity := sym.NameArity + sym.Free
	a := *adorn
	if a == "" {
		a = strings.Repeat("f", arity)
	}
	if len(a) != arity {
		return fmt.Errorf("adornment %q has length %d, predicate arity is %d", a, len(a), arity)
	}
	proc, err := nail.Generate(lp, sym, a, nail.Options{
		Magic:     !*noMagic,
		SemiNaive: !*naive,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%% Glue procedure generated for %s.%s with binding pattern %q\n", *module, pred, a)
	fmt.Print(ast.FormatProc(proc))
	return nil
}
