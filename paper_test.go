package gluenail

import (
	"strings"
	"testing"
)

// Every code fragment the paper presents, run as written (modulo the typo
// repairs documented in examples/cad). Section references are to the
// SIGMOD 1991 paper.

// §3.1: "r(X,Y) += s(X,W) & t(f(W,X),Y)."
func TestPaper31CompoundTermJoin(t *testing.T) {
	sys := New()
	if err := sys.Load(`
edb r(X,Y), s(X,W), t(K,Y);
proc go(:)
  r(X,Y) += s(X,W) & t(f(W,X),Y).
  return(:) := s(_,_).
end
`); err != nil {
		t.Fatal(err)
	}
	sys.Assert("s", []any{1, 10}, []any{2, 20})
	sys.Assert("t",
		[]any{Compound("f", Int(10), Int(1)), 100},
		[]any{Compound("f", Int(20), Int(2)), 200},
		[]any{Compound("f", Int(99), Int(1)), 900}) // no matching s tuple
	if _, err := sys.Call("main", "go"); err != nil {
		t.Fatal(err)
	}
	rows, _ := sys.Relation("r", 2)
	if len(rows) != 2 {
		t.Fatalf("r = %v", rows)
	}
	if rows[0][1].Int() != 100 || rows[1][1].Int() != 200 {
		t.Errorf("r = %v", rows)
	}
}

// §3.2: the supplementary-relation example
// h(X,W) := a(X,A,B) & b(A,C) & c(B,C,W).
func TestPaper32SupplementaryJoin(t *testing.T) {
	sys := New()
	if err := sys.Load(`
edb h(X,W), a(X,A,B), b(A,C), c(B,C,W);
proc go(:)
  h(X,W) := a(X,A,B) & b(A,C) & c(B,C,W).
  return(:) := a(_,_,_).
end
`); err != nil {
		t.Fatal(err)
	}
	sys.Assert("a", []any{1, "a1", "b1"}, []any{2, "a2", "b2"})
	sys.Assert("b", []any{"a1", "c1"}, []any{"a2", "c2"})
	sys.Assert("c", []any{"b1", "c1", 77}, []any{"b2", "c9", 88})
	if _, err := sys.Call("main", "go"); err != nil {
		t.Fatal(err)
	}
	rows, _ := sys.Relation("h", 2)
	// Only the X=1 chain completes: a(1,a1,b1), b(a1,c1), c(b1,c1,77).
	if len(rows) != 1 || rows[0][0].Int() != 1 || rows[0][1].Int() != 77 {
		t.Errorf("h = %v", rows)
	}
}

// §3.3: "max_temp( MaxT ):= temperature( T ) & MaxT = max(T)." with the
// paper's worked values: temperature = {(10),(35)} so MaxT = 35 and
// sup_2 = {(10,35),(35,35)}.
func TestPaper33MaxTemp(t *testing.T) {
	sys := New()
	if err := sys.Load(`
edb temperature(T);
max_temp(MaxT) :- temperature(T) & MaxT = max(T).
pairs(T, MaxT) :- temperature(T) & MaxT = max(T).
`); err != nil {
		t.Fatal(err)
	}
	sys.Assert("temperature", []any{10}, []any{35})
	res, err := sys.Query("max_temp(M)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 35 {
		t.Errorf("max_temp = %v", res.Rows)
	}
	// The supplementary relation after the aggregator: every tuple
	// extended with the aggregate, exactly as the paper's table shows.
	res, err = sys.Query("pairs(T, M)")
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]int64{{10, 35}, {35, 35}}
	if len(res.Rows) != 2 {
		t.Fatalf("pairs = %v", res.Rows)
	}
	for i, w := range want {
		if res.Rows[i][0].Int() != w[0] || res.Rows[i][1].Int() != w[1] {
			t.Errorf("pairs = %v, want %v", res.Rows, want)
		}
	}
}

// §3.3: the coldest-city example with the paper's table, in both forms —
// the three-subgoal version and the combined "T = min(T)" version.
func TestPaper33ColdestCityBothForms(t *testing.T) {
	sys := New()
	if err := sys.Load(`
edb daily_temp(Name, T);
coldest_city(Name) :-
  daily_temp(Name, T) & MinT = min(T) & T = MinT.
coldest_cities(Name) :-
  daily_temp(Name, T) & T = min(T).
`); err != nil {
		t.Fatal(err)
	}
	sys.Assert("daily_temp",
		[]any{"san_francisco", 12}, []any{"madang", 36}, []any{"copenhagen", -2})
	for _, q := range []string{"coldest_city(N)", "coldest_cities(N)"} {
		res, err := sys.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0].Str() != "copenhagen" {
			t.Errorf("%s = %v", q, res.Rows)
		}
	}
	// The footnote tie case: "or cities, in the case of a tie."
	sys.Assert("daily_temp", []any{"yakutsk", -2})
	res, _ := sys.Query("coldest_cities(N)")
	if len(res.Rows) != 2 {
		t.Errorf("tie case = %v", res.Rows)
	}
}

// §3.3.1: group_by cascading — a second group_by splits groups further.
func TestPaper331CascadingGroupBy(t *testing.T) {
	sys := New()
	if err := sys.Load(`
edb sale(Region, Store, Amount);
by_region(R, Total) :- sale(R, S, A) & group_by(R) & Total = sum(A).
by_store(R, S, Total) :- sale(R, S, A) & group_by(R) & group_by(S) & Total = sum(A).
`); err != nil {
		t.Fatal(err)
	}
	sys.Assert("sale",
		[]any{"west", "w1", 10}, []any{"west", "w1", 20},
		[]any{"west", "w2", 5}, []any{"east", "e1", 7})
	res, err := sys.Query("by_region(R, T)")
	if err != nil {
		t.Fatal(err)
	}
	// east=7, west=35.
	if len(res.Rows) != 2 || res.Rows[0][1].Int() != 7 || res.Rows[1][1].Int() != 35 {
		t.Errorf("by_region = %v", res.Rows)
	}
	res, err = sys.Query("by_store(R, S, T)")
	if err != nil {
		t.Fatal(err)
	}
	// e1=7, w1=30, w2=5 (cascaded grouping splits west).
	if len(res.Rows) != 3 {
		t.Fatalf("by_store = %v", res.Rows)
	}
	totals := map[string]int64{}
	for _, r := range res.Rows {
		totals[r[1].Str()] = r[2].Int()
	}
	if totals["e1"] != 7 || totals["w1"] != 30 || totals["w2"] != 5 {
		t.Errorf("by_store totals = %v", totals)
	}
}

// §5: the class_info example with the paper's exact EDB, checking the
// implied IDB tuples students(cs99)(wilson) and students(cs99)(green).
func TestPaper5ClassInfo(t *testing.T) {
	sys := New()
	if err := sys.Load(`
edb class_instructor(ID, I), class_room(ID, R), class_subject(ID, Subj),
    failed_exam(P, Subj), attends(P, ID);

class_info(ID, Instructor, Room, tas(ID), students(ID)) :-
  class_instructor(ID, Instructor) &
  class_room(ID, Room).

tas(ID)(TA) :-
  class_subject(ID, Subject) &
  failed_exam(TA, Subject).

students(ID)(Name) :- attends(Name, ID).
`); err != nil {
		t.Fatal(err)
	}
	// The example EDB from §5, verbatim.
	sys.Assert("class_instructor", []any{"cs99", "smith"})
	sys.Assert("class_room", []any{"cs99", "mjh460a"})
	sys.Assert("class_subject", []any{"cs99", "databases"})
	sys.Assert("failed_exam", []any{"jones", "databases"})
	sys.Assert("attends", []any{"wilson", "cs99"}, []any{"green", "cs99"})

	// "It implies the following IDB tuples: students(cs99)(wilson).
	// students(cs99)(green)."
	res, err := sys.Query("students(cs99)(N)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].Str() != "green" || res.Rows[1][0].Str() != "wilson" {
		t.Errorf("students(cs99) = %v", res.Rows)
	}
	// "A typical use of the class_info predicate might be:
	// class_info(C,I,R,T,S) & T(TA) & S(Student)"
	res, err = sys.Query("class_info(C,I,R,T,S) & T(TA) & S(Student)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 { // jones × {wilson, green}
		t.Fatalf("typical use = %v", res.Rows)
	}
	for _, r := range res.Rows {
		if r[5].Str() != "jones" { // TA column
			t.Errorf("TA = %v", r[5])
		}
	}
}

// §5.2: the HiLog meta-programming example — a universal transitive
// closure parameterized by the edge relation:
//
//	tc(E,X,X).
//	tc(E,X,Z):- tc(E,X,Y) & E(Y,Z).
//
// The fact rule's head variables are bound by the magic guard, so the
// bound call tc(edge, a, X) is safe and evaluates only the relevant part.
func TestPaper52UniversalTC(t *testing.T) {
	sys := New()
	if err := sys.Load(`
edb edge(X,Y), other(X,Y);
tc(E,X,X).
tc(E,X,Z) :- tc(E,X,Y) & E(Y,Z).
`); err != nil {
		t.Fatal(err)
	}
	sys.Assert("edge", []any{"a", "b"}, []any{"b", "c"})
	sys.Assert("other", []any{"a", "z"})
	res, err := sys.Query("tc(edge, a, X)")
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, r := range res.Rows {
		got[r[0].Str()] = true
	}
	if len(got) != 3 || !got["a"] || !got["b"] || !got["c"] {
		t.Errorf("tc(edge,a,X) = %v", res.Rows)
	}
	// The same predicate over a different edge relation.
	res, err = sys.Query("tc(other, a, X)")
	if err != nil {
		t.Fatal(err)
	}
	got = map[string]bool{}
	for _, r := range res.Rows {
		got[r[0].Str()] = true
	}
	if len(got) != 2 || !got["a"] || !got["z"] {
		t.Errorf("tc(other,a,X) = %v", res.Rows)
	}
	// Without magic sets the fact rule tc(E,X,X) is unsafe, as the paper's
	// semantics imply: the full extension is infinite.
	sys2 := New(WithoutMagicSets())
	sys2.Load(`
edb edge(X,Y);
tc(E,X,X).
tc(E,X,Z) :- tc(E,X,Y) & E(Y,Z).
`)
	if _, err := sys2.Query("tc(edge, a, X)"); err == nil {
		t.Error("all-free evaluation of the universal tc should be rejected as unsafe")
	}
}

// §2: "in Glue a subgoal can be a NAIL! predicate, or an EDB relation or a
// Glue procedure. The syntax and behavior is the same in all three cases."
func TestPaper2UsageEquivalence(t *testing.T) {
	sys := New()
	if err := sys.Load(`
edb base(X), out1(X), out2(X), out3(X);
derived(X) :- base(X).
proc produced(:X)
  return(:X) := base(X).
end
proc go(:)
  out1(X) := base(X).
  out2(X) := derived(X).
  out3(X) := produced(X).
  return(:) := base(_).
end
`); err != nil {
		t.Fatal(err)
	}
	sys.Assert("base", []any{1}, []any{2})
	if _, err := sys.Call("main", "go"); err != nil {
		t.Fatal(err)
	}
	for _, rel := range []string{"out1", "out2", "out3"} {
		rows, _ := sys.Relation(rel, 1)
		if len(rows) != 2 {
			t.Errorf("%s = %v (all three subgoal classes must behave alike)", rel, rows)
		}
	}
}

// §2: "Predicates do not have duplicates."
func TestPaper2NoDuplicates(t *testing.T) {
	sys := New()
	sys.Load(`
edb src(X, Tag), flat(X);
proc go(:)
  flat(X) := src(X, _).
  return(:) := src(_,_).
end
`)
	sys.Assert("src", []any{1, "a"}, []any{1, "b"}, []any{2, "a"})
	if _, err := sys.Call("main", "go"); err != nil {
		t.Fatal(err)
	}
	rows, _ := sys.Relation("flat", 1)
	if len(rows) != 2 {
		t.Errorf("flat = %v, want 2 distinct", rows)
	}
}

// §9: the compiler eliminates impossible predicate classes at compile
// time; an undeclared predicate in an explicit module is a compile error,
// not a run-time check.
func TestPaper9CompileTimeResolution(t *testing.T) {
	sys := New()
	sys.Load(`
module strict;
edb known(X);
proc go(:)
  known(X) := unknown_pred(X).
  return(:) := known(_).
end
end
`)
	_, err := sys.QueryIn("strict", "known(X)")
	if err == nil || !strings.Contains(err.Error(), "unknown predicate") {
		t.Errorf("expected compile-time unknown-predicate error, got %v", err)
	}
}
