package gluenail

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// EXPLAIN golden tests: the rendered physical plan — chosen op order,
// access paths, and estimated cardinalities derived from live EDB
// statistics — is compared byte-for-byte against testdata/explain/*.golden.
// Regenerate with `go test -run TestExplainGolden -update`. Only plain
// EXPLAIN is golden-tested: EXPLAIN ANALYZE output includes index-build
// wall time, which is not deterministic.

var explainCases = []struct {
	name    string
	program string
	facts   func(sys *System)
	goals   string
}{
	{
		name: "tc_bound",
		program: `
edb edge(X,Y);
tc(X,Y) :- edge(X,Y).
tc(X,Z) :- tc(X,Y) & edge(Y,Z).
`,
		facts: func(sys *System) {
			sys.Assert("edge", []any{1, 2}, []any{2, 3}, []any{3, 4}, []any{4, 5})
		},
		goals: "tc(1, X)",
	},
	{
		name: "skewed_join",
		program: `
edb big(X,Y), tiny(Y,Z);
joined(X,Z) :- big(X,Y) & tiny(Y,Z).
`,
		facts: func(sys *System) {
			for i := 0; i < 300; i++ {
				sys.Assert("big", []any{i, i % 2})
			}
			sys.Assert("tiny", []any{0, "a"}, []any{1, "b"})
		},
		goals: "joined(X, Z)",
	},
	{
		name: "negation_filter",
		program: `
edb person(P), banned(P);
ok(P) :- person(P) & !banned(P).
`,
		facts: func(sys *System) {
			sys.Assert("person", []any{"a"}, []any{"b"}, []any{"c"})
			sys.Assert("banned", []any{"b"})
		},
		goals: "ok(P)",
	},
}

func TestExplainGolden(t *testing.T) {
	for _, tc := range explainCases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			sys := New()
			if err := sys.Load(tc.program); err != nil {
				t.Fatal(err)
			}
			tc.facts(sys)
			got, err := sys.Explain(tc.goals)
			if err != nil {
				t.Fatal(err)
			}
			goldenPath := filepath.Join("testdata", "explain", tc.name+".golden")
			if *update {
				if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("EXPLAIN mismatch for %s:\n--- got ---\n%s--- want ---\n%s",
					tc.name, got, want)
			}
		})
	}
}

// TestExplainAnalyze checks the acceptance contract: EXPLAIN ANALYZE shows
// per-op estimated AND actual cardinalities, and the query's answers are
// unchanged by having been explained.
func TestExplainAnalyze(t *testing.T) {
	sys := New()
	if err := sys.Load(`
edb edge(X,Y);
tc(X,Y) :- edge(X,Y).
tc(X,Z) :- tc(X,Y) & edge(Y,Z).
`); err != nil {
		t.Fatal(err)
	}
	sys.Assert("edge", []any{1, 2}, []any{2, 3}, []any{3, 4})

	plain, err := sys.Explain("tc(1, X)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plain, "est=") {
		t.Error("EXPLAIN lacks estimated cardinalities")
	}
	if strings.Contains(plain, "act_in=") {
		t.Error("plain EXPLAIN must not show actuals")
	}

	analyzed, err := sys.ExplainAnalyze("tc(1, X)")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"est=", "act_in=", "act_out=", "probe", "scan"} {
		if !strings.Contains(analyzed, want) {
			t.Errorf("EXPLAIN ANALYZE output lacks %q:\n%s", want, analyzed)
		}
	}

	res, err := sys.Query("tc(1, X)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Errorf("query after EXPLAIN ANALYZE returned %d rows, want 3", len(res.Rows))
	}
}

// TestExplainAnalyzeCall exercises the procedure-call variant used by the
// CLI's -explain-analyze -call path.
func TestExplainAnalyzeCall(t *testing.T) {
	sys := New()
	if err := sys.Load(`
edb item(N);
item(1). item(2). item(3).
proc doubles(:N,M)
  return(:N,M) := item(N) & M = N * 2.
end
`); err != nil {
		t.Fatal(err)
	}
	out, err := sys.ExplainAnalyzeCall("main", "doubles")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "act_out=") {
		t.Errorf("ExplainAnalyzeCall lacks actuals:\n%s", out)
	}
}

// TestExplainAdaptsToStats checks that EXPLAIN re-plans from current
// statistics: growing one relation past the other flips the chosen join
// order in the rendered plan.
func TestExplainAdaptsToStats(t *testing.T) {
	program := `
edb r(X,Y), s(Y,Z);
j(X,Z) :- r(X,Y) & s(Y,Z).
`
	leadsWith := func(sys *System, t *testing.T) string {
		t.Helper()
		out, err := sys.Explain("j(X, Z)")
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(out, "\n") {
			line = strings.TrimSpace(line)
			if strings.HasPrefix(line, "match edb:") {
				return line[len("match edb:"):][:1]
			}
		}
		t.Fatalf("no edb match in plan:\n%s", out)
		return ""
	}
	sys := New()
	if err := sys.Load(program); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		sys.Assert("r", []any{i, i % 3})
	}
	sys.Assert("s", []any{0, 0}, []any{1, 1}, []any{2, 2})
	if got := leadsWith(sys, t); got != "s" {
		t.Errorf("with r huge the plan should lead with s, got %q", got)
	}

	sys2 := New()
	if err := sys2.Load(program); err != nil {
		t.Fatal(err)
	}
	sys2.Assert("r", []any{0, 0}, []any{1, 1})
	for i := 0; i < 200; i++ {
		sys2.Assert("s", []any{i % 3, i})
	}
	if got := leadsWith(sys2, t); got != "r" {
		t.Errorf("with s huge the plan should lead with r, got %q", got)
	}
}
