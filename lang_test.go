package gluenail

import (
	"bytes"
	"strings"
	"testing"
)

// Second-round language tests: behaviors not covered by the paper-fragment
// tests — negated calls, HiLog corner cases, update semantics, module
// visibility, and API surface.

func TestNegatedNailSubgoal(t *testing.T) {
	sys := New()
	if err := sys.Load(`
edb edge(X,Y), node(X);
reach(X,Y) :- edge(X,Y).
reach(X,Z) :- reach(X,Y) & edge(Y,Z).
isolated(X,Y) :- node(X) & node(Y) & X != Y & !reach(X,Y).
`); err != nil {
		t.Fatal(err)
	}
	sys.Assert("edge", []any{1, 2})
	sys.Assert("node", []any{1}, []any{2}, []any{3})
	res, err := sys.Query("isolated(1, Y)")
	if err != nil {
		t.Fatal(err)
	}
	// 1 reaches 2 but not 3.
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 3 {
		t.Errorf("isolated(1,Y) = %v", res.Rows)
	}
}

func TestNegatedProcCall(t *testing.T) {
	sys := New()
	if err := sys.Load(`
edb item(X), special(X), plain(X);
proc is_special(X:)
  return(X:) := in(X) & special(X).
end
proc classify(:)
  plain(X) := item(X) & !is_special(X).
  return(:) := item(_).
end
`); err != nil {
		t.Fatal(err)
	}
	sys.Assert("item", []any{1}, []any{2}, []any{3})
	sys.Assert("special", []any{2})
	if _, err := sys.Call("main", "classify"); err != nil {
		t.Fatal(err)
	}
	rows, _ := sys.Relation("plain", 1)
	if len(rows) != 2 || rows[0][0].Int() != 1 || rows[1][0].Int() != 3 {
		t.Errorf("plain = %v", rows)
	}
}

func TestGroupByInGlueProcedure(t *testing.T) {
	sys := New()
	if err := sys.Load(`
edb score(Team, Pts), best(Team, Max);
proc summarize(:)
  best(Team, M) := score(Team, P) & group_by(Team) & M = max(P).
  return(:) := score(_,_).
end
`); err != nil {
		t.Fatal(err)
	}
	sys.Assert("score", []any{"a", 3}, []any{"a", 7}, []any{"b", 5})
	if _, err := sys.Call("main", "summarize"); err != nil {
		t.Fatal(err)
	}
	rows, _ := sys.Relation("best", 2)
	if len(rows) != 2 {
		t.Fatalf("best = %v", rows)
	}
	if rows[0][1].Int() != 3+4 && rows[0][1].Int() != 7 {
		t.Errorf("best[0] = %v", rows[0])
	}
}

func TestCompoundHeadArgs(t *testing.T) {
	// Heads may build compound terms: point pairs.
	sys := New()
	sys.Load(`
edb xy(X,Y), pt(P);
proc build(:)
  pt(p(X,Y)) := xy(X,Y).
  return(:) := xy(_,_).
end
`)
	sys.Assert("xy", []any{1, 2})
	if _, err := sys.Call("main", "build"); err != nil {
		t.Fatal(err)
	}
	rows, _ := sys.Relation("pt", 1)
	if len(rows) != 1 || !rows[0][0].Equal(Compound("p", Int(1), Int(2))) {
		t.Errorf("pt = %v", rows)
	}
	// And destructure them back.
	res, err := sys.Query("pt(p(A, B))")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 1 || res.Rows[0][1].Int() != 2 {
		t.Errorf("destructure = %v", res.Rows)
	}
}

func TestBindingEquationDecomposesTerms(t *testing.T) {
	// f(A,B) = X where X is bound to a compound decomposes it.
	sys := New()
	sys.Load(`edb holds(X);`)
	sys.Assert("holds", []any{Compound("f", Int(1), Str("x"))})
	res, err := sys.Query("holds(X) & f(A, B) = X")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][1].Int() != 1 || res.Rows[0][2].Str() != "x" {
		t.Errorf("decomposed = %v", res.Rows[0])
	}
	// Non-matching shape yields nothing.
	res, _ = sys.Query("holds(X) & g(A) = X")
	if len(res.Rows) != 0 {
		t.Errorf("wrong functor should not match: %v", res.Rows)
	}
}

func TestDeleteAssignment(t *testing.T) {
	sys := New()
	sys.Load(`
edb stock(Item, N), discontinued(Item);
proc prune(:)
  stock(I, N) -= stock(I, N) & discontinued(I).
  return(:) := stock(_,_).
end
`)
	sys.Assert("stock", []any{"apple", 5}, []any{"vhs", 3}, []any{"pear", 2})
	sys.Assert("discontinued", []any{"vhs"})
	if _, err := sys.Call("main", "prune"); err != nil {
		t.Fatal(err)
	}
	rows, _ := sys.Relation("stock", 2)
	if len(rows) != 2 {
		t.Errorf("stock = %v", rows)
	}
	for _, r := range rows {
		if r[0].Str() == "vhs" {
			t.Error("vhs should be pruned")
		}
	}
}

func TestModifyByKeyUpsert(t *testing.T) {
	// +=[key] both replaces matching-key tuples and inserts fresh keys
	// (SQL UPDATE-or-INSERT shape).
	sys := New()
	sys.Load(`
edb price(Item, P), newprice(Item, P);
proc reprice(:)
  price(I, P) +=[I] newprice(I, P).
  return(:) := newprice(_,_).
end
`)
	sys.Assert("price", []any{"apple", 10}, []any{"pear", 20})
	sys.Assert("newprice", []any{"apple", 12}, []any{"plum", 9})
	if _, err := sys.Call("main", "reprice"); err != nil {
		t.Fatal(err)
	}
	rows, _ := sys.Relation("price", 2)
	got := map[string]int64{}
	for _, r := range rows {
		got[r[0].Str()] = r[1].Int()
	}
	if len(got) != 3 || got["apple"] != 12 || got["pear"] != 20 || got["plum"] != 9 {
		t.Errorf("price = %v", got)
	}
}

func TestHiLogSetBuiltInGlueAndRead(t *testing.T) {
	// A Glue procedure creates set relations via a computed head name,
	// then other code dispatches into them.
	sys := New()
	sys.Load(`
edb emp(Dept, Name), dept_set(Dept, S);
proc build(:)
  team(D)(N) := emp(D, N).
  dept_set(D, team(D)) := emp(D, _).
  return(:) := emp(_,_).
end
`)
	sys.Assert("emp", []any{"toy", "ann"}, []any{"toy", "bob"}, []any{"it", "cy"})
	if _, err := sys.Call("main", "build"); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Query("dept_set(toy, S) & S(N)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("toy team = %v", res.Rows)
	}
	// The stored set relations are plain EDB relations with compound names.
	rows, _ := sys.Relation(Compound("team", Str("it")), 1)
	if len(rows) != 1 || rows[0][0].Str() != "cy" {
		t.Errorf("team(it) = %v", rows)
	}
}

func TestExplainAPI(t *testing.T) {
	sys := New()
	sys.Load(`
edb e(X,Y);
tc(X,Y) :- e(X,Y).
tc(X,Z) :- tc(X,Y) & e(Y,Z).
proc probe(X:Y)
  return(X:Y) := tc(X,Y).
end
`)
	text, err := sys.ExplainProc("main", "probe")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"proc main.probe (1:1)", "call main.tc@bf", "segment"} {
		if !strings.Contains(text, want) {
			t.Errorf("explain missing %q:\n%s", want, text)
		}
	}
	ids, err := sys.Procs()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, id := range ids {
		if id == "main.tc@bf" {
			found = true
		}
	}
	if !found {
		t.Errorf("Procs() = %v, want main.tc@bf included", ids)
	}
	if _, err := sys.ExplainProc("main", "nosuch"); err == nil {
		t.Error("explain of unknown proc should fail")
	}
}

func TestIncrementalLoads(t *testing.T) {
	sys := New()
	if err := sys.Load(`edb edge(X,Y);`); err != nil {
		t.Fatal(err)
	}
	sys.Assert("edge", []any{1, 2})
	res, err := sys.Query("edge(X, Y)")
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("first query: %v %v", res, err)
	}
	// Load more code after querying; EDB contents survive recompilation.
	if err := sys.Load(`tc(X,Y) :- edge(X,Y). tc(X,Z) :- tc(X,Y) & edge(Y,Z).`); err != nil {
		t.Fatal(err)
	}
	sys.Assert("edge", []any{2, 3})
	res, err = sys.Query("tc(1, X)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("tc after incremental load = %v", res.Rows)
	}
}

func TestRetractAndRelationAPI(t *testing.T) {
	sys := New()
	sys.Load(`edb p(X);`)
	sys.Assert("p", []any{1}, []any{2})
	sys.Retract("p", []any{1})
	rows, err := sys.Relation("p", 1)
	if err != nil || len(rows) != 1 || rows[0][0].Int() != 2 {
		t.Errorf("after retract: %v %v", rows, err)
	}
	// Missing relation reads as empty.
	rows, err = sys.Relation("nothere", 3)
	if err != nil || rows != nil {
		t.Errorf("missing relation: %v %v", rows, err)
	}
	// Bad Go value conversion.
	if err := sys.Assert("p", []any{struct{}{}}); err == nil {
		t.Error("Assert of unconvertible value should fail")
	}
	if err := sys.Retract("p", []any{struct{}{}}); err == nil {
		t.Error("Retract of unconvertible value should fail")
	}
	if _, err := sys.Relation(struct{}{}, 1); err == nil {
		t.Error("Relation with unconvertible name should fail")
	}
}

func TestValueConstructors(t *testing.T) {
	if Int(3).Int() != 3 || Float(1.5).Float() != 1.5 || Str("x").Str() != "x" {
		t.Error("constructors broken")
	}
	c := Compound("f", Int(1))
	if c.NumArgs() != 1 || c.Functor().Str() != "f" {
		t.Error("Compound broken")
	}
}

func TestCallErrors(t *testing.T) {
	sys := New()
	sys.Load(`
edb e(X);
proc p(X:)
  return(X:) := in(X) & e(X).
end
`)
	if _, err := sys.Call("main", "nosuch"); err == nil {
		t.Error("unknown proc should fail")
	}
	if _, err := sys.Call("zzz", "p"); err == nil {
		t.Error("unknown module should fail")
	}
	if _, err := sys.Call("main", "p", []any{struct{}{}}); err == nil {
		t.Error("bad value should fail")
	}
}

func TestRegisterDuplicateAndLate(t *testing.T) {
	sys := New()
	f := func(in [][]Value) ([][]Value, error) { return in, nil }
	if err := sys.Register("ident", 1, 0, false, f); err != nil {
		t.Fatal(err)
	}
	if err := sys.Register("ident", 1, 0, false, f); err == nil {
		t.Error("duplicate registration should fail")
	}
	// Registering after a query triggers recompilation on next use.
	sys.Load(`edb p(X);`)
	sys.Assert("p", []any{1})
	if _, err := sys.Query("p(X)"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Register("late", 1, 0, false, f); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Query("p(X) & late(X)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("late builtin rows = %v", res.Rows)
	}
}

func TestFixedForeignProcOrderPreserved(t *testing.T) {
	// A fixed foreign procedure must not be reordered before the subgoals
	// textually preceding it.
	var calls []string
	sys := New()
	sys.Register("probe", 1, 0, true, func(in [][]Value) ([][]Value, error) {
		for _, row := range in {
			calls = append(calls, row[0].String())
		}
		return in, nil
	})
	sys.Load(`
edb big(X), one(X), out(X);
proc go(:)
  out(X) := big(X) & probe(X) & one(X).
  return(:) := big(_).
end
`)
	for i := 0; i < 5; i++ {
		sys.Assert("big", []any{i})
	}
	sys.Assert("one", []any{3})
	if _, err := sys.Call("main", "go"); err != nil {
		t.Fatal(err)
	}
	// probe is fixed: it must see all 5 bindings of big (not be pushed
	// after the selective one(X) filter).
	if len(calls) != 5 {
		t.Errorf("probe saw %d bindings (%v), want 5", len(calls), calls)
	}
	rows, _ := sys.Relation("out", 1)
	if len(rows) != 1 || rows[0][0].Int() != 3 {
		t.Errorf("out = %v", rows)
	}
}

func TestNonFixedForeignProcMayReorder(t *testing.T) {
	// The same shape with a non-fixed procedure: the compiler is free to
	// run the selective filter first, so the procedure sees fewer inputs.
	var calls int
	sys := New()
	sys.Register("probe", 1, 0, false, func(in [][]Value) ([][]Value, error) {
		calls += len(in)
		return in, nil
	})
	sys.Load(`
edb big(X), one(X), out(X);
proc go(:)
  out(X) := big(X) & probe(X) & one(X).
  return(:) := big(_).
end
`)
	for i := 0; i < 5; i++ {
		sys.Assert("big", []any{i})
	}
	sys.Assert("one", []any{3})
	if _, err := sys.Call("main", "go"); err != nil {
		t.Fatal(err)
	}
	if calls >= 5 {
		t.Errorf("non-fixed probe saw %d bindings; reordering should shrink its input", calls)
	}
}

func TestUntilDisjunctionBothBranches(t *testing.T) {
	// Loop exits via whichever alternative becomes true first.
	run := func(stopVal int64) int64 {
		var buf bytes.Buffer
		sys := New(WithOutput(&buf))
		sys.Load(`
edb counter(N), limit(N), found(N);
proc spin(:)
  repeat
    counter(N2) := counter(N) & N2 = N + 1.
    found(N) := counter(N) & limit(N).
  until { found(_) | counter(10) };
  return(:) := counter(_).
end
`)
		sys.Assert("counter", []any{0})
		sys.Assert("limit", []any{stopVal})
		if _, err := sys.Call("main", "spin"); err != nil {
			t.Fatal(err)
		}
		rows, _ := sys.Relation("counter", 1)
		return rows[0][0].Int()
	}
	if got := run(4); got != 4 {
		t.Errorf("found-branch exit at %d, want 4", got)
	}
	if got := run(99); got != 10 {
		t.Errorf("counter-branch exit at %d, want 10", got)
	}
}

func TestFloatFormattingRoundTrip(t *testing.T) {
	sys := New()
	sys.Load(`edb v(X);`)
	sys.Assert("v", []any{0.1}, []any{2.0})
	res, err := sys.Query("v(X) & Y = X * 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	x := 0.1 // force run-time float64 arithmetic, not exact constant folding
	if got := res.Rows[0][1].Float(); got != x*3 {
		t.Errorf("0.1*3 = %v, want %v", got, x*3)
	}
	if s := res.Rows[1][0].String(); s != "2.0" {
		t.Errorf("float prints as %q, want 2.0", s)
	}
}

func TestEmptyAggregateIsNoRows(t *testing.T) {
	// Aggregation over an empty body yields no rows (the statement stops
	// at the empty supplementary relation), not an error.
	sys := New()
	sys.Load(`edb v(X);`)
	res, err := sys.Query("v(X) & M = max(X)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("empty aggregate rows = %v", res.Rows)
	}
}
