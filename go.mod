module gluenail

go 1.22
