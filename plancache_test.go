package gluenail

import (
	"math/rand"
	"strings"
	"testing"
)

// System-level tests for the prepared-plan cache and the vectorized batch
// kernels: repeated queries must hit the cache, stats-epoch changes and
// selectivity drift must invalidate it, and every cache/kernel ablation
// must return byte-identical rows at every worker count.

const chainProgram = `
edb edge(X,Y);
tc(X,Y) :- edge(X,Y).
tc(X,Z) :- tc(X,Y) & edge(Y,Z).
`

func chainFacts(n int) [][]any {
	rows := make([][]any, n)
	for i := range rows {
		rows[i] = []any{i, i + 1}
	}
	return rows
}

func TestPlanCacheRepeatedQueryHits(t *testing.T) {
	sys := New()
	if err := sys.Load(chainProgram); err != nil {
		t.Fatal(err)
	}
	if err := sys.Assert("edge", chainFacts(50)...); err != nil {
		t.Fatal(err)
	}
	var want string
	for i := 0; i < 10; i++ {
		res, err := sys.Query("tc(0, X)")
		if err != nil {
			t.Fatal(err)
		}
		key := rowsKey(res)
		if i == 0 {
			want = key
		} else if key != want {
			t.Fatalf("run %d returned different rows", i)
		}
	}
	st := sys.PlanCacheStats()
	if st.Hits == 0 {
		t.Fatalf("10 identical queries produced no plan-cache hits: %+v", st)
	}
	// Semi-naive deltas move their stats epochs between iterations, so the
	// recursive query legitimately re-plans sometimes. A non-recursive
	// EDB-only query is the steady-state hot path: after a warm-up run,
	// every rerun must be all hits.
	if _, err := sys.Query("edge(0, X) & edge(X, Y)"); err != nil {
		t.Fatal(err)
	}
	misses := sys.PlanCacheStats().Misses
	for i := 0; i < 5; i++ {
		if _, err := sys.Query("edge(0, X) & edge(X, Y)"); err != nil {
			t.Fatal(err)
		}
	}
	if got := sys.PlanCacheStats().Misses; got != misses {
		t.Fatalf("steady-state reruns missed the cache: %d -> %d misses", misses, got)
	}
}

// TestPlanCacheEpochInvalidation grows a relation past the geometric
// stats-epoch threshold between runs: the cached plan must be dropped (a
// miss, not a stale answer) and the new rows must appear in the results.
func TestPlanCacheEpochInvalidation(t *testing.T) {
	sys := New()
	if err := sys.Load(chainProgram); err != nil {
		t.Fatal(err)
	}
	if err := sys.Assert("edge", chainFacts(20)...); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Query("tc(0, X)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 20 {
		t.Fatalf("warm-up query: %d rows, want 20", len(res.Rows))
	}
	if _, err := sys.Query("tc(0, X)"); err != nil {
		t.Fatal(err)
	}
	misses := sys.PlanCacheStats().Misses
	// Quadruple the relation: well past the doubling threshold.
	var more [][]any
	for i := 20; i < 80; i++ {
		more = append(more, []any{i, i + 1})
	}
	if err := sys.Assert("edge", more...); err != nil {
		t.Fatal(err)
	}
	res, err = sys.Query("tc(0, X)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 80 {
		t.Fatalf("after growth: %d rows, want 80 (stale plan or stale data?)", len(res.Rows))
	}
	if got := sys.PlanCacheStats().Misses; got == misses {
		t.Fatalf("relation quadrupled but the cache never missed (epoch key inert)")
	}
}

// TestPlanCacheDriftInvalidation forces stale statistics: the planner's
// static estimate for an always-false comparison (selectivity 0.5) is off
// by far more than the drift factor from the observed 0, so once enough
// rows have been profiled the cached plan must be invalidated and
// re-planned with the observed feedback — after which lookups hit again.
func TestPlanCacheDriftInvalidation(t *testing.T) {
	sys := New()
	if err := sys.Load("edb r(X);"); err != nil {
		t.Fatal(err)
	}
	rows := make([][]any, 200)
	for i := range rows {
		rows[i] = []any{i}
	}
	if err := sys.Assert("r", rows...); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		res, err := sys.Query("r(X) & X > 100000")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 0 {
			t.Fatalf("impossible filter returned %d rows", len(res.Rows))
		}
	}
	st := sys.PlanCacheStats()
	if st.Invalidations == 0 {
		t.Fatalf("estimate/observation drift of 0.5 vs 0.0 over 200 rows never invalidated: %+v", st)
	}
	// The re-planned entry bakes the observed selectivity in: further runs
	// must hit, not thrash.
	inval, hits := st.Invalidations, st.Hits
	for i := 0; i < 4; i++ {
		if _, err := sys.Query("r(X) & X > 100000"); err != nil {
			t.Fatal(err)
		}
	}
	st = sys.PlanCacheStats()
	if st.Invalidations != inval {
		t.Fatalf("cache thrashes after feedback re-plan: %d -> %d invalidations",
			inval, st.Invalidations)
	}
	if st.Hits == hits {
		t.Fatal("no hits after feedback re-plan")
	}
}

// TestPlanCacheBatchAblationGrid runs a join/negation/aggregation workload
// across every cache × kernel × worker combination; all must return
// byte-identical rows, on the first and on a repeated (cache-served) run.
func TestPlanCacheBatchAblationGrid(t *testing.T) {
	const program = `
edb edge(X,Y), blocked(X);
tc(X,Y) :- edge(X,Y).
tc(X,Z) :- tc(X,Y) & edge(Y,Z).
reach(X,Y) :- tc(X,Y) & !blocked(Y).
fanout(X,N) :- tc(X,Y) & group_by(X) & N = count(Y).
`
	rng := rand.New(rand.NewSource(7))
	var edges [][]any
	for i := 0; i < 120; i++ {
		edges = append(edges, []any{rng.Intn(30), rng.Intn(30)})
	}
	var blocked [][]any
	for i := 0; i < 30; i += 3 {
		blocked = append(blocked, []any{i})
	}
	queries := []string{"tc(1, X)", "reach(1, X)", "fanout(X, N)"}
	configs := map[string][]Option{
		"cache+batch":    nil,
		"cache+scalar":   {WithBatchKernels(false)},
		"nocache+batch":  {WithPlanCache(false)},
		"nocache+scalar": {WithPlanCache(false), WithBatchKernels(false)},
	}
	var ref []string
	var refName string
	for name, opts := range configs {
		for _, workers := range []int{1, 16} {
			all := append([]Option{WithParallelism(workers), WithParallelThreshold(4)}, opts...)
			sys := New(all...)
			if err := sys.Load(program); err != nil {
				t.Fatal(err)
			}
			sys.Assert("edge", edges...)
			sys.Assert("blocked", blocked...)
			var got []string
			for _, q := range queries {
				// Twice: the second run exercises cache-served plans.
				for run := 0; run < 2; run++ {
					res, err := sys.Query(q)
					if err != nil {
						t.Fatalf("%s/%dw: %s: %v", name, workers, q, err)
					}
					got = append(got, rowsKey(res))
				}
			}
			if ref == nil {
				ref, refName = got, name+"/1w"
				for i := 0; i < len(ref); i += 2 {
					if ref[i] == "" {
						t.Fatalf("query %q returned no rows; nothing exercised", queries[i/2])
					}
				}
				continue
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("%s/%dw disagrees with %s on %s (run %d):\n%s\nvs\n%s",
						name, workers, refName, queries[i/2], i%2, got[i], ref[i])
				}
			}
		}
	}
}

func TestPreparedExecute(t *testing.T) {
	sys := New()
	if err := sys.Load(chainProgram); err != nil {
		t.Fatal(err)
	}
	if err := sys.Assert("edge", chainFacts(10)...); err != nil {
		t.Fatal(err)
	}
	p, err := sys.Prepare("tc(0, X)")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Vars(); len(got) != 1 || got[0] != "X" {
		t.Fatalf("Vars() = %v, want [X]", got)
	}
	direct, err := sys.Query("tc(0, X)")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		res, err := p.Execute()
		if err != nil {
			t.Fatal(err)
		}
		if rowsKey(res) != rowsKey(direct) {
			t.Fatalf("run %d: Prepared.Execute disagrees with Query", i)
		}
	}

	// A new Load recompiles the program; the handle must transparently
	// re-prepare and see both the new rule and the new facts.
	if err := sys.Load("tc2(X,Y) :- tc(X,Y).\n"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Assert("edge", []any{10, 11}); err != nil {
		t.Fatal(err)
	}
	res, err := p.Execute()
	if err != nil {
		t.Fatalf("Execute after recompile: %v", err)
	}
	if len(res.Rows) != 11 {
		t.Fatalf("after recompile+assert: %d rows, want 11", len(res.Rows))
	}
}

// TestExplainAnalyzePlanCacheCounters checks the EXPLAIN ANALYZE trailer:
// enabled systems report the cache counters for exactly the analyzed run,
// disabled ones say so.
func TestExplainAnalyzePlanCacheCounters(t *testing.T) {
	sys := New()
	if err := sys.Load(chainProgram); err != nil {
		t.Fatal(err)
	}
	if err := sys.Assert("edge", chainFacts(10)...); err != nil {
		t.Fatal(err)
	}
	text, err := sys.ExplainAnalyze("tc(0, X)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "plan cache: hits=") {
		t.Fatalf("EXPLAIN ANALYZE output lacks the plan-cache line:\n%s", text)
	}
	plain, err := sys.Explain("tc(0, X)")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain, "plan cache") {
		t.Fatalf("plain EXPLAIN must not carry the plan-cache line:\n%s", plain)
	}

	off := New(WithPlanCache(false))
	if err := off.Load(chainProgram); err != nil {
		t.Fatal(err)
	}
	if err := off.Assert("edge", chainFacts(10)...); err != nil {
		t.Fatal(err)
	}
	text, err = off.ExplainAnalyze("tc(0, X)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "plan cache: disabled") {
		t.Fatalf("disabled cache not reported by EXPLAIN ANALYZE:\n%s", text)
	}
}

// TestPlanCacheRepeatedQueryAllocs pins the point of the cache: a repeated
// query allocates strictly less with the cache on than off, because the
// greedy reorder's op clones and hint slices are gone from the hot path.
func TestPlanCacheRepeatedQueryAllocs(t *testing.T) {
	run := func(opts ...Option) float64 {
		sys := New(append([]Option{WithParallelism(1)}, opts...)...)
		if err := sys.Load(chainProgram); err != nil {
			t.Fatal(err)
		}
		if err := sys.Assert("edge", chainFacts(30)...); err != nil {
			t.Fatal(err)
		}
		// A non-recursive bound query: execution is tiny, so the planner's
		// op clones dominate the uncached per-run allocations. Warm
		// everything once (compilation, temp relations, first plan).
		const q = "edge(0, X) & edge(X, Y) & edge(Y, Z)"
		for i := 0; i < 3; i++ {
			if _, err := sys.Query(q); err != nil {
				t.Fatal(err)
			}
		}
		return testing.AllocsPerRun(20, func() {
			if _, err := sys.Query(q); err != nil {
				t.Fatal(err)
			}
		})
	}
	cached := run()
	uncached := run(WithPlanCache(false))
	if cached >= uncached {
		t.Fatalf("cached repeated query allocates %.0f objects/op, uncached %.0f — caching saves nothing",
			cached, uncached)
	}
	t.Logf("allocs/query: cached=%.0f uncached=%.0f", cached, uncached)
}
