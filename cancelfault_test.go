package gluenail_test

// Cancellation-fault harness ("cancelfault"): the governor's durability
// contract is that an aborted call always leaves the on-disk state at a
// clean statement boundary — the WAL prefix of exactly the statements
// that completed before the abort, never a torn statement. This suite
// injects cancellation deterministically at every statement boundary
// (by counting trace lines) and nondeterministically at randomized
// points inside parallel segments, then recovers the directory and
// checks the durable contents against precomputed statement prefixes.
// It is the governor counterpart of the byte-level WAL fault harness in
// internal/wal/fault_test.go.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"gluenail"
)

// cancelStmts are the six bookkeeping statements of the fault workload.
// Statement j derives rows tagged j in their first column, so the set of
// tags present in the durable mark relation identifies exactly which
// statement prefix committed. Statement 4 reads statement 3's output and
// statement 5 is a cross product — big enough to fan out over morsel
// workers at a low parallel threshold.
var cancelStmts = []string{
	"  mark(1, X) += seed(X).",
	"  mark(2, X) += seed(X) & X > 1.",
	"  mark(3, Y) += seed(X) & Y = X * 10.",
	"  mark(4, Y) += mark(3, X) & Y = X + 1.",
	"  mark(5, Y) += seed(X) & seed(Z) & Y = X * 100 + Z.",
	"  mark(6, X) += seed(X).",
}

// cancelProg builds the workload with only the first n mark statements,
// so uninterrupted runs of truncated programs give the ground-truth
// prefix states. Truncation is sound because statement j reads only seed
// and (for j=4) statement 3's output.
func cancelProg(n int) string {
	var sb strings.Builder
	sb.WriteString("edb mark(S, X);\nedb seed(X);\n\nproc work(:)\n")
	for i := 0; i < n; i++ {
		sb.WriteString(cancelStmts[i])
		sb.WriteByte('\n')
	}
	sb.WriteString("  return(:) := seed(_).\nend\n")
	return sb.String()
}

func seedCancel(t *testing.T, sys *gluenail.System, n int64) {
	t.Helper()
	rows := make([][]any, 0, n)
	for i := int64(1); i <= n; i++ {
		rows = append(rows, []any{i})
	}
	if err := sys.Assert("seed", rows...); err != nil {
		t.Fatal(err)
	}
}

// cancelPrefixes runs each truncated program to completion in memory and
// returns prefixes[k] = durable mark contents after exactly k statements.
func cancelPrefixes(t *testing.T, seedN int64) []string {
	t.Helper()
	prefixes := make([]string, len(cancelStmts)+1)
	for k := 0; k <= len(cancelStmts); k++ {
		mem := gluenail.New()
		if err := mem.Load(cancelProg(k)); err != nil {
			t.Fatalf("load prefix %d: %v", k, err)
		}
		seedCancel(t, mem, seedN)
		if _, err := mem.Call("main", "work", []any{}); err != nil {
			t.Fatalf("prefix %d run: %v", k, err)
		}
		prefixes[k] = relDump(t, mem, "mark", 2)
	}
	return prefixes
}

// stmtCancelWriter is a trace sink that cancels a context as soon as it
// has seen k statement trace lines. Statement lines start with "  ["
// (see vm.execStmt); "call"/"return from" frame lines are ignored. The
// trace line for statement k is emitted after its pipeline ran but
// before its head is applied and committed — and the governor's next
// check site is the following instruction boundary — so cancelling on
// line k lets statement k commit and aborts strictly before k+1.
type stmtCancelWriter struct {
	mu     sync.Mutex
	buf    []byte
	k      int
	seen   int
	cancel context.CancelFunc
}

func (w *stmtCancelWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf = append(w.buf, p...)
	for {
		i := bytes.IndexByte(w.buf, '\n')
		if i < 0 {
			return len(p), nil
		}
		line := string(w.buf[:i])
		w.buf = w.buf[i+1:]
		if strings.HasPrefix(line, "  [") {
			w.seen++
			if w.seen == w.k {
				w.cancel()
			}
		}
	}
}

// TestCancelAtStatementBoundaryPrefix is the deterministic suite: for
// every statement index k and worker count, cancel the call right after
// statement k's trace line, crash (abandon without Close), recover the
// directory, and require the durable state to be byte-identical to the
// uninterrupted run of the k-statement prefix. Then re-run the recovered
// system to completion and require byte-identity with a full run.
func TestCancelAtStatementBoundaryPrefix(t *testing.T) {
	const seedN = 3
	prefixes := cancelPrefixes(t, seedN)
	full := prefixes[len(cancelStmts)]

	// k ranges over 0 (cancel before any statement) .. 7 (cancel on the
	// return statement's line, after every mark statement committed).
	for _, workers := range []int{1, 2, 4, 8} {
		for k := 0; k <= len(cancelStmts)+1; k++ {
			t.Run(fmt.Sprintf("workers=%d/k=%d", workers, k), func(t *testing.T) {
				dir := t.TempDir()
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				cw := &stmtCancelWriter{k: k, cancel: cancel}
				sys, err := gluenail.Open(dir,
					gluenail.WithFsync(gluenail.FsyncAlways),
					gluenail.WithTrace(cw),
					gluenail.WithParallelism(workers),
					gluenail.WithParallelThreshold(1))
				if err != nil {
					t.Fatal(err)
				}
				if err := sys.Load(cancelProg(len(cancelStmts))); err != nil {
					t.Fatal(err)
				}
				seedCancel(t, sys, seedN)
				if k == 0 {
					cancel()
				}
				_, callErr := sys.CallContext(ctx, "main", "work", []any{})
				if k <= len(cancelStmts) {
					if !errors.Is(callErr, gluenail.ErrCanceled) {
						t.Fatalf("want ErrCanceled at k=%d, got %v", k, callErr)
					}
				} else if callErr != nil && !errors.Is(callErr, gluenail.ErrCanceled) {
					// Cancelling on the final (return) statement's line may
					// race the call finishing; either is a clean outcome.
					t.Fatalf("unexpected error at k=%d: %v", k, callErr)
				}

				// Simulated crash: abandon without Close, recover the dir.
				want := prefixes[min(k, len(cancelStmts))]
				re, err := gluenail.Open(dir)
				if err != nil {
					t.Fatal(err)
				}
				if got := relDump(t, re, "mark", 2); got != want {
					t.Fatalf("recovered state is not the statement-%d prefix:\ngot:\n%swant:\n%s",
						min(k, len(cancelStmts)), got, want)
				}

				// Resume: the recovered system re-run to completion must be
				// byte-identical to a never-interrupted run.
				if err := re.Load(cancelProg(len(cancelStmts))); err != nil {
					t.Fatal(err)
				}
				if _, err := re.Call("main", "work", []any{}); err != nil {
					t.Fatal(err)
				}
				if got := relDump(t, re, "mark", 2); got != full {
					t.Fatalf("resumed run diverged from uninterrupted run:\ngot:\n%swant:\n%s", got, full)
				}
				if err := re.Close(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestRandomizedCancelLandsOnPrefix is the nondeterministic suite:
// cancellation and deadline faults injected at arbitrary wall-clock
// points — including mid-statement, inside morsel-parallel segments —
// must still recover to SOME clean statement prefix, never a torn state.
func TestRandomizedCancelLandsOnPrefix(t *testing.T) {
	const seedN = 24 // statement 5 derives 24x24 rows across morsels
	prefixes := cancelPrefixes(t, seedN)
	prefixSet := make(map[string]int, len(prefixes))
	for k, p := range prefixes {
		prefixSet[p] = k
	}

	const trials = 14
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			workers := 1 + trial%8
			dir := t.TempDir()
			opts := []gluenail.Option{
				gluenail.WithFsync(gluenail.FsyncAlways),
				gluenail.WithParallelism(workers),
				gluenail.WithParallelThreshold(1),
				gluenail.WithOutput(io.Discard),
			}
			// Alternate fault kind: even trials cancel after a staggered
			// delay, odd trials inject a context deadline.
			delay := time.Duration(200+700*trial) * time.Microsecond
			if trial%2 == 1 {
				opts = append(opts, gluenail.WithTimeout(delay))
			}
			sys, err := gluenail.Open(dir, opts...)
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.Load(cancelProg(len(cancelStmts))); err != nil {
				t.Fatal(err)
			}
			seedCancel(t, sys, seedN)
			ctx, cancel := context.WithCancel(context.Background())
			if trial%2 == 0 {
				go func() {
					time.Sleep(delay)
					cancel()
				}()
			}
			_, callErr := sys.CallContext(ctx, "main", "work", []any{})
			cancel()
			if callErr != nil &&
				!errors.Is(callErr, gluenail.ErrCanceled) &&
				!errors.Is(callErr, gluenail.ErrTimeout) {
				t.Fatalf("unexpected error kind: %v", callErr)
			}

			re, err := gluenail.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			got := relDump(t, re, "mark", 2)
			k, ok := prefixSet[got]
			if !ok {
				t.Fatalf("recovered state matches no statement prefix (torn commit?):\n%s", got)
			}
			t.Logf("workers=%d delay=%v err=%v -> recovered at statement prefix %d", workers, delay, callErr, k)
			if err := re.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
