// Benchmarks regenerating every quantitative claim of the paper's
// evaluation content (§5, §9, §10); see DESIGN.md §4 for the experiment
// index and EXPERIMENTS.md for paper-vs-measured results. cmd/glbench
// prints the same comparisons as tables.
package gluenail_test

import (
	"fmt"
	"testing"
	"time"

	"gluenail"
	"gluenail/internal/bench"
	"gluenail/internal/storage"
	"gluenail/internal/storage/disk"
	"gluenail/internal/term"
)

// BenchmarkE1CompilerThroughput measures end-to-end compilation speed
// (lex+parse+link+plan) in statements per second. §9: "The system compiles
// about two statements per Mips-second"; the shape to reproduce is
// throughput roughly flat in program size (linear total cost).
func BenchmarkE1CompilerThroughput(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("stmts=%d", n), func(b *testing.B) {
			src := bench.SyntheticProgram(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := bench.CompileSource(src); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "stmts/sec")
		})
	}
}

// BenchmarkE2PipelineVsMaterialize compares the pipelined (nested-join)
// execution strategy against full materialization of every supplementary
// relation. §9: breaking the pipeline "costs an extra load and store for
// each tuple".
func BenchmarkE2PipelineVsMaterialize(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		for _, mode := range []string{"pipelined", "materialized"} {
			b.Run(fmt.Sprintf("rows=%d/%s", n, mode), func(b *testing.B) {
				var opts []gluenail.Option
				if mode == "materialized" {
					opts = append(opts, gluenail.WithMaterializedExecution())
				}
				sys := bench.NewJoinSystem(n, 4, opts...)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := bench.RunJoin(sys); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(sys.Stats().Exec.TuplesMaterialized)/float64(b.N),
					"tuples-stored/op")
			})
		}
	}
}

// BenchmarkE3EarlyDupElim measures duplicate elimination at pipeline
// breaks across duplicate factors. §9: "removing duplicates early has
// always been advantageous ... in the worst case [dup factor 1] pipeline
// breakage is a loss".
func BenchmarkE3EarlyDupElim(b *testing.B) {
	for _, dup := range []int{1, 4, 16} {
		for _, mode := range []string{"dedup", "no-dedup"} {
			b.Run(fmt.Sprintf("dup=%d/%s", dup, mode), func(b *testing.B) {
				var opts []gluenail.Option
				if mode == "no-dedup" {
					opts = append(opts, gluenail.WithoutDupElimination())
				}
				sys := bench.NewDupSystem(2000/dup, dup, opts...)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := bench.RunDup(sys); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkE4AdaptiveIndex sweeps repeated selections under the three
// index policies. §10: "an index could be created for a relation after the
// cumulative cost of selection by scanning the relation reaches the cost
// of creating the index" — adaptive should track never-index for few
// queries and always-index for many, crossing over after ~2 scans.
func BenchmarkE4AdaptiveIndex(b *testing.B) {
	policies := map[string]storage.IndexPolicy{
		"adaptive": storage.IndexAdaptive,
		"never":    storage.IndexNever,
		"always":   storage.IndexAlways,
	}
	for _, q := range []int{1, 4, 64} {
		for _, name := range []string{"adaptive", "never", "always"} {
			b.Run(fmt.Sprintf("queries=%d/%s", q, name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					bench.RunSelections(policies[name], 50000, 500, q)
				}
			})
		}
	}
}

// BenchmarkE5SeminaiveVsNaive compares delta-driven (uniondiff-supported)
// recursion against naive re-derivation on transitive closure. §10: the
// back end implements uniondiff "to support compiled recursive NAIL!
// queries".
func BenchmarkE5SeminaiveVsNaive(b *testing.B) {
	for _, n := range []int{32, 64, 128} {
		for _, mode := range []string{"seminaive", "naive"} {
			b.Run(fmt.Sprintf("chain=%d/%s", n, mode), func(b *testing.B) {
				var opts []gluenail.Option
				if mode == "naive" {
					opts = append(opts, gluenail.WithNaiveEvaluation())
				}
				sys := bench.NewTCSystem(bench.ChainEdges(n), opts...)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := sys.Query("tc(X, Y)"); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkE6HiLogDispatch compares compile-time-narrowed HiLog predicate
// dispatch against runtime class search. §5/§9: "much of the predicate
// selection analysis can be done at compile time".
func BenchmarkE6HiLogDispatch(b *testing.B) {
	for _, sets := range []int{8, 64, 256} {
		for _, mode := range []string{"narrowed", "runtime"} {
			b.Run(fmt.Sprintf("sets=%d/%s", sets, mode), func(b *testing.B) {
				var opts []gluenail.Option
				if mode == "runtime" {
					opts = append(opts, gluenail.WithoutDispatchNarrowing())
				}
				sys := bench.NewDispatchSystem(sets, 4, 400, opts...)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := bench.RunDispatch(sys); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkE7SetEqByName compares name equality of set-valued attributes
// with extensional comparison. §5.1: "much of the time a simple
// string-string matching suffices".
func BenchmarkE7SetEqByName(b *testing.B) {
	for _, mode := range []string{"by-name", "by-members"} {
		b.Run(mode, func(b *testing.B) {
			sys := bench.NewSetEqSystem(64, 100)
			run := bench.RunSetEqByName
			if mode == "by-members" {
				run = bench.RunSetEqByMembers
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := run(sys); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE8BackendLayering runs a temporary-heavy procedural workload on
// the tailored main-memory store and on the simulated DBMS-layered store.
// §10: building on a protected relational system "wastes much of its time"
// on short-lived temporaries.
func BenchmarkE8BackendLayering(b *testing.B) {
	for _, mode := range []string{"tailored", "layered"} {
		b.Run(mode, func(b *testing.B) {
			var opts []gluenail.Option
			if mode == "layered" {
				opts = append(opts, gluenail.WithLayeredBackend())
			}
			sys := bench.NewTemporariesSystem(40, opts...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := bench.RunTemporaries(sys, 20); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE9MagicSets compares magic-set-rewritten bound queries against
// computing the full closure and filtering. §8.2/§4: procedures are called
// on their bound arguments, so only the relevant subset is derived.
func BenchmarkE9MagicSets(b *testing.B) {
	for _, n := range []int{200, 400} {
		for _, mode := range []string{"magic", "full"} {
			b.Run(fmt.Sprintf("nodes=%d/%s", n, mode), func(b *testing.B) {
				var opts []gluenail.Option
				if mode == "full" {
					opts = append(opts, gluenail.WithoutMagicSets())
				}
				// Sparse random graph: most nodes unreachable from node 1,
				// which is where magic wins.
				sys := bench.NewTCSystem(bench.RandomEdges(n, n, 7), opts...)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := sys.Query("tc(1, X)"); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkE10ParallelPipeline measures intra-segment morsel parallelism
// on a join-heavy segment: a 20k-row driver scan feeding two index probes,
// per-row arithmetic, and a selective filter. workers=1 is the sequential
// baseline; higher counts fan the segment out over the worker pool. The
// result set is identical at every worker count.
func BenchmarkE10ParallelPipeline(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			sys := bench.NewParallelJoinSystem(20000, 4,
				gluenail.WithParallelism(workers))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := bench.RunParJoin(sys); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE11Durability measures what crash durability costs the
// main-memory execution model (§6): the same EDB-insert loop with the
// WAL off and with the WAL on under each fsync policy. Each iteration
// runs against a fresh store so every statement genuinely mutates (and
// therefore commits).
func BenchmarkE11Durability(b *testing.B) {
	modes := []struct {
		name  string
		dir   string
		fsync gluenail.FsyncMode
	}{
		{"wal=off", "", 0},
		{"fsync=none", "none", gluenail.FsyncNever},
		{"fsync=batch", "batch", gluenail.FsyncBatch},
		{"fsync=always", "always", gluenail.FsyncAlways},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			dir := ""
			if m.dir != "" {
				dir = b.TempDir()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys, err := bench.NewDurableSystem(dir, m.fsync)
				if err != nil {
					b.Fatal(err)
				}
				if err := bench.RunDurable(sys, 500); err != nil {
					b.Fatal(err)
				}
				if err := sys.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkA1ReorderingAblation measures the subgoal-reordering
// optimization (§3.1: "A Glue system is free to reorder the non-fixed
// subgoals"): a selective bound-argument lookup written last in the source
// should be moved ahead of an unselective scan.
func BenchmarkA1ReorderingAblation(b *testing.B) {
	for _, mode := range []string{"reordered", "source-order"} {
		b.Run(mode, func(b *testing.B) {
			var opts []gluenail.Option
			if mode == "source-order" {
				opts = append(opts, gluenail.WithoutReordering())
			}
			sys := bench.NewReorderSystem(1000, opts...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := bench.RunReorder(sys); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE12StatsOrdering measures the statistics-driven physical
// planner on a skewed join where the compiler's static orderings (textual
// and greedy coincide here — no constant arguments to score) scan the big
// relation, while live row counts steer the run-time planner to start from
// the tiny probe relation and index-probe only the matching slice of big.
func BenchmarkE12StatsOrdering(b *testing.B) {
	for _, mode := range []struct {
		name string
		opts []gluenail.Option
	}{
		{"textual", []gluenail.Option{gluenail.WithoutReordering()}},
		{"greedy", []gluenail.Option{gluenail.WithGreedyOrdering()}},
		{"stats", nil},
	} {
		b.Run(mode.name, func(b *testing.B) {
			sys := bench.NewSkewJoinSystem(20000, 100, 4, mode.opts...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := bench.RunSkewJoin(sys); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkF1CadSelect times the Figure 1 micro-CAD select interaction
// end-to-end over a 10k-element drawing.
func BenchmarkF1CadSelect(b *testing.B) {
	r := bench.NewCadRun(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Select(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE13HashKernels measures the tuple-level hot paths — duplicate
// elimination inside a semi-naive repeat loop, aggregation grouping, and
// head-insert probes — on a dedup-heavy transitive-closure + group-by
// workload over string-labelled nodes. Reported allocs/op is the headline
// metric (BENCH_E13.json, EXPERIMENTS.md): the hash-first kernels must
// hold it at a fraction of the string-key baseline. The string-key variant
// runs the legacy materializing kernels for comparison.
func BenchmarkE13HashKernels(b *testing.B) {
	for _, mode := range []struct {
		name string
		opts []gluenail.Option
	}{
		{"hash-first/seq", nil},
		{"hash-first/4-workers", []gluenail.Option{
			gluenail.WithParallelism(4), gluenail.WithParallelThreshold(64),
		}},
		{"string-key/seq", []gluenail.Option{gluenail.WithStringKeyKernels()}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			sys := bench.NewTCGroupSystem(120, 240, 7, mode.opts...)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := bench.RunTCGroup(sys); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE15RepeatedQuery measures the repeated-small-query hot path: the
// same bound customer lookup issued over and over against a warm system.
// The grid ablates the two mechanisms independently — the prepared-plan
// cache (skips per-query physical planning once statistics are stable) and
// the vectorized batch kernels (column-major scan->filter->probe execution)
// — against the PR 5 baseline with both off. Headline metrics (ns/op and
// allocs/op) are recorded in BENCH_E15.json by cmd/glbench; the acceptance
// target is >=2x ns/op improvement for cache+batch over neither.
func BenchmarkE15RepeatedQuery(b *testing.B) {
	for _, mode := range []struct {
		name string
		opts []gluenail.Option
	}{
		{"cache+batch", nil},
		{"cache-only", []gluenail.Option{gluenail.WithBatchKernels(false)}},
		{"batch-only", []gluenail.Option{gluenail.WithPlanCache(false)}},
		{"neither", []gluenail.Option{
			gluenail.WithPlanCache(false), gluenail.WithBatchKernels(false)}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			sys := bench.NewRepeatedQuerySystem(512, 8, 6,
				append([]gluenail.Option{gluenail.WithParallelism(1)}, mode.opts...)...)
			// Warm: compile the query proc and let statistics settle so the
			// steady state — not first-run planning — is what gets timed.
			for i := 0; i < 3; i++ {
				if _, err := bench.RunRepeatedQuery(sys); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := bench.RunRepeatedQuery(sys); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE14GovernorOverhead measures what the execution governor costs
// when it never fires: the E13 closure + group-by workload run ungoverned
// versus under a far-away wall-clock deadline and tuple budget (which is
// what arms the per-instruction / per-8192-rows cancellation checks).
// EXPERIMENTS.md target: governed within 2% of ungoverned time/op.
func BenchmarkE14GovernorOverhead(b *testing.B) {
	governed := gluenail.WithBudget(gluenail.Budget{
		Timeout:   time.Hour,
		MaxTuples: 1 << 40,
	})
	par := []gluenail.Option{
		gluenail.WithParallelism(4), gluenail.WithParallelThreshold(64),
	}
	for _, mode := range []struct {
		name string
		opts []gluenail.Option
	}{
		{"seq/ungoverned", nil},
		{"seq/governed", []gluenail.Option{governed}},
		{"4-workers/ungoverned", par},
		{"4-workers/governed", append(append([]gluenail.Option{}, par...), governed)},
	} {
		b.Run(mode.name, func(b *testing.B) {
			sys := bench.NewTCGroupSystem(120, 240, 7, mode.opts...)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := bench.RunTCGroup(sys); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE18DiskEngine measures the fast-disk-engine paths: membership
// miss probes against a reopened multi-run store with and without per-run
// bloom filters, and durable ingest through per-statement WAL commits
// versus the direct bulk path. EXPERIMENTS.md targets: blooms answer miss
// probes without touching run files; bulk ingest ≥2× the WAL path.
func BenchmarkE18DiskEngine(b *testing.B) {
	b.Run("miss-probe", func(b *testing.B) {
		const rows = 65536
		for _, mode := range []struct {
			name    string
			noBloom bool
		}{{"bloom", false}, {"no-bloom", true}} {
			b.Run(mode.name, func(b *testing.B) {
				dir := b.TempDir()
				st, err := disk.Open(dir, disk.Options{FlushRows: 4096, NoCompactor: true})
				if err != nil {
					b.Fatal(err)
				}
				rel := st.Ensure(term.Intern("edge"), 2)
				for i := 0; i < rows; i++ {
					rel.Insert(term.Tuple{term.NewInt(int64(i)), term.NewInt(int64(i + 1))})
				}
				if err := st.FlushBase(); err != nil {
					b.Fatal(err)
				}
				st.Close()
				st, err = disk.Open(dir, disk.Options{
					FlushRows: 4096, NoCompactor: true, NoBloom: mode.noBloom})
				if err != nil {
					b.Fatal(err)
				}
				defer st.Close()
				probed, _ := st.Get(term.Intern("edge"), 2)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if probed.Contains(term.Tuple{term.NewInt(int64(rows + i)), term.NewInt(0)}) {
						b.Fatal("absent key reported present")
					}
				}
			})
		}
	})
	b.Run("ingest-16k", func(b *testing.B) {
		const n = 16384
		for _, mode := range []struct {
			name  string
			chunk int
		}{{"wal-1024", 1024}, {"bulk", n}} {
			b.Run(mode.name, func(b *testing.B) {
				var chunks [][][]any
				for lo := 0; lo < n; lo += mode.chunk {
					rows := make([][]any, mode.chunk)
					for j := range rows {
						rows[j] = []any{lo + j, lo + j + 1}
					}
					chunks = append(chunks, rows)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					dir := b.TempDir()
					sys, err := gluenail.Open(dir,
						gluenail.WithBackend("disk"),
						gluenail.WithFsync(gluenail.FsyncAlways))
					if err != nil {
						b.Fatal(err)
					}
					if err := sys.Load(`edb edge(X,Y);`); err != nil {
						b.Fatal(err)
					}
					for _, rows := range chunks {
						if err := sys.Assert("edge", rows...); err != nil {
							b.Fatal(err)
						}
					}
					if err := sys.Checkpoint(); err != nil {
						b.Fatal(err)
					}
					sys.Close()
				}
			})
		}
	})
}
