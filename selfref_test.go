package gluenail

import "testing"

// Self-referential statements: the all-solutions semantics of §3 requires
// the body to be fully evaluated against the OLD state before the head
// operator applies.

func TestClearingAssignReadsOldState(t *testing.T) {
	// r(X,Y) := r(Y,X).  — transpose in place.
	sys := New()
	sys.Load(`
edb r(X,Y);
proc transpose(:)
  r(X,Y) := r(Y,X).
  return(:) := r(_,_).
end
`)
	sys.Assert("r", []any{1, 2}, []any{3, 4})
	if _, err := sys.Call("main", "transpose"); err != nil {
		t.Fatal(err)
	}
	rows, _ := sys.Relation("r", 2)
	if len(rows) != 2 {
		t.Fatalf("r = %v", rows)
	}
	if rows[0][0].Int() != 2 || rows[0][1].Int() != 1 ||
		rows[1][0].Int() != 4 || rows[1][1].Int() != 3 {
		t.Errorf("transpose = %v", rows)
	}
}

func TestInsertIntoScannedRelationIsSnapshotted(t *testing.T) {
	// p(Y) += p(X) & Y = X + 1.  — one generation per execution, not an
	// infinite cascade within the statement.
	sys := New()
	sys.Load(`
edb p(X);
proc step(:)
  p(Y) += p(X) & Y = X + 1.
  return(:) := p(_).
end
`)
	sys.Assert("p", []any{0})
	if _, err := sys.Call("main", "step"); err != nil {
		t.Fatal(err)
	}
	rows, _ := sys.Relation("p", 1)
	if len(rows) != 2 { // 0 and 1, NOT 0..infinity
		t.Fatalf("p after one step = %v", rows)
	}
	if _, err := sys.Call("main", "step"); err != nil {
		t.Fatal(err)
	}
	rows, _ = sys.Relation("p", 1)
	if len(rows) != 3 {
		t.Errorf("p after two steps = %v", rows)
	}
}

func TestDeleteWhileScanningSameRelation(t *testing.T) {
	// q(X) -= q(X) & X > 1.  — deletes are computed from the full scan.
	sys := New()
	sys.Load(`
edb q(X);
proc prune(:)
  q(X) -= q(X) & X > 1.
  return(:) := q(_).
end
`)
	sys.Assert("q", []any{1}, []any{2}, []any{3})
	if _, err := sys.Call("main", "prune"); err != nil {
		t.Fatal(err)
	}
	rows, _ := sys.Relation("q", 1)
	if len(rows) != 1 || rows[0][0].Int() != 1 {
		t.Errorf("q = %v", rows)
	}
}

func TestInBodyUpdateAfterScanOfSameRelation(t *testing.T) {
	// The --queue(X) barrier applies after the queue(X) scan materialized,
	// so every tuple is seen exactly once.
	sys := New()
	sys.Load(`
edb queue(X), moved(X);
proc drain(:)
  moved(X) := queue(X) & --queue(X).
  return(:) := moved(_).
end
`)
	sys.Assert("queue", []any{1}, []any{2}, []any{3})
	if _, err := sys.Call("main", "drain"); err != nil {
		t.Fatal(err)
	}
	moved, _ := sys.Relation("moved", 1)
	queue, _ := sys.Relation("queue", 1)
	if len(moved) != 3 || len(queue) != 0 {
		t.Errorf("moved=%v queue=%v", moved, queue)
	}
}

func TestAggregateOverRelationBeingAssigned(t *testing.T) {
	// totals(X, S) := amounts(X, V) & group_by(X) & S = sum(V) where
	// totals also had stale contents: := clears before inserting.
	sys := New()
	sys.Load(`
edb amounts(X, V), totals(X, S);
proc roll(:)
  totals(X, S) := amounts(X, V) & group_by(X) & S = sum(V).
  return(:) := amounts(_,_).
end
`)
	sys.Assert("totals", []any{"stale", 999})
	sys.Assert("amounts", []any{"a", 1}, []any{"a", 2}, []any{"b", 5})
	if _, err := sys.Call("main", "roll"); err != nil {
		t.Fatal(err)
	}
	rows, _ := sys.Relation("totals", 2)
	if len(rows) != 2 {
		t.Fatalf("totals = %v (stale row should be cleared)", rows)
	}
	if rows[0][1].Int() != 3 || rows[1][1].Int() != 5 {
		t.Errorf("totals = %v", rows)
	}
}
