package gluenail

import (
	"bytes"
	"strings"
	"testing"
)

// rowsAsInts extracts single-column integer results.
func rowsAsInts(t *testing.T, res *Result) []int64 {
	t.Helper()
	var out []int64
	for _, r := range res.Rows {
		if len(r) != 1 {
			t.Fatalf("row arity %d, want 1", len(r))
		}
		out = append(out, r[0].Int())
	}
	return out
}

func wantInts(t *testing.T, res *Result, want ...int64) {
	t.Helper()
	got := rowsAsInts(t, res)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestEDBQuery(t *testing.T) {
	sys := New()
	if err := sys.Load(`edb edge(X,Y);`); err != nil {
		t.Fatal(err)
	}
	if err := sys.Assert("edge", []any{1, 2}, []any{2, 3}, []any{1, 3}); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Query("edge(1, X)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Vars) != 1 || res.Vars[0] != "X" {
		t.Errorf("vars = %v", res.Vars)
	}
	wantInts(t, res, 2, 3)
}

func TestTransitiveClosureRules(t *testing.T) {
	sys := New()
	err := sys.Load(`
edb edge(X,Y);
tc(X,Y) :- edge(X,Y).
tc(X,Z) :- tc(X,Y) & edge(Y,Z).
`)
	if err != nil {
		t.Fatal(err)
	}
	// Chain 1 -> 2 -> 3 -> 4 plus a side edge.
	sys.Assert("edge", []any{1, 2}, []any{2, 3}, []any{3, 4}, []any{2, 9})
	res, err := sys.Query("tc(1, X)")
	if err != nil {
		t.Fatal(err)
	}
	wantInts(t, res, 2, 3, 4, 9)
	// Bound query exercises the magic-set path.
	res, err = sys.Query("tc(2, X)")
	if err != nil {
		t.Fatal(err)
	}
	wantInts(t, res, 3, 4, 9)
	// Fully bound.
	res, err = sys.Query("tc(1, 4)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("tc(1,4) rows = %d", len(res.Rows))
	}
	res, err = sys.Query("tc(4, X)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("tc(4,X) rows = %v", res.Rows)
	}
}

func TestPaperTcProcedure(t *testing.T) {
	// §4's tc_e procedure, verbatim semantics.
	sys := New()
	err := sys.Load(`
edb e(X,Y);
procedure tc_e (X:Y)
rels connected(X,Y);
  connected(X,Y):= in(X) & e(X,Y).
  repeat
    connected(X,Y)+= connected(X,Z) & e(Z,Y).
  until unchanged( connected(_,_));
  return(X:Y):= connected(X,Y).
end
`)
	if err != nil {
		t.Fatal(err)
	}
	sys.Assert("e", []any{1, 2}, []any{2, 3}, []any{3, 1}, []any{7, 8})
	out, err := sys.Call("main", "tc_e", []any{1})
	if err != nil {
		t.Fatal(err)
	}
	// Reachable from 1 over the cycle: 1, 2, 3.
	want := [][2]int64{{1, 1}, {1, 2}, {1, 3}}
	if len(out) != len(want) {
		t.Fatalf("got %v, want %v", out, want)
	}
	for i, w := range want {
		if out[i][0].Int() != w[0] || out[i][1].Int() != w[1] {
			t.Fatalf("got %v, want %v", out, want)
		}
	}
	// Set-at-a-time call with several inputs.
	out, err = sys.Call("main", "tc_e", []any{1}, []any{7})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 { // (1,1),(1,2),(1,3),(7,8)
		t.Errorf("multi-input call rows = %v", out)
	}
}

func TestIdentityMatrixExample(t *testing.T) {
	// §3.1's identity-matrix statements.
	sys := New(WithOutput(&bytes.Buffer{}))
	err := sys.Load(`
edb row(X), matrix(X,Y,V);
proc fill(:)
  matrix(X,X, 1.0):= row(X).
  matrix(X,Y, 0.0)+= row(X) & row(Y) & X != Y.
  return(:):= row(_).
end
`)
	if err != nil {
		t.Fatal(err)
	}
	sys.Assert("row", []any{1}, []any{2}, []any{3})
	if _, err := sys.Call("main", "fill"); err != nil {
		t.Fatal(err)
	}
	rows, err := sys.Relation("matrix", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("matrix has %d entries, want 9", len(rows))
	}
	res, _ := sys.Query("matrix(2, 2, V)")
	if len(res.Rows) != 1 || res.Rows[0][0].Float() != 1.0 {
		t.Errorf("diagonal = %v", res.Rows)
	}
	res, _ = sys.Query("matrix(1, 2, V)")
	if len(res.Rows) != 1 || res.Rows[0][0].Float() != 0.0 {
		t.Errorf("off-diagonal = %v", res.Rows)
	}
}

func TestAggregationColdestCity(t *testing.T) {
	// §3.3's coldest-city example.
	sys := New()
	err := sys.Load(`
edb daily_temp(Name, T);
coldest_city(Name) :- daily_temp(Name, T) & MinT = min(T) & T = MinT.
`)
	if err != nil {
		t.Fatal(err)
	}
	sys.Assert("daily_temp",
		[]any{"san_francisco", 12}, []any{"madang", 36}, []any{"copenhagen", -2})
	res, err := sys.Query("coldest_city(N)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "copenhagen" {
		t.Errorf("coldest = %v", res.Rows)
	}
}

func TestGroupByCourseAverage(t *testing.T) {
	// §3.3.1's course-average example.
	sys := New()
	err := sys.Load(`
edb course_student_grade(C,S,G);
course_average(C, Avg) :-
  course_student_grade(C,S,G) & group_by(C) & Avg = mean(G).
`)
	if err != nil {
		t.Fatal(err)
	}
	sys.Assert("course_student_grade",
		[]any{"cs99", "ann", 80}, []any{"cs99", "bob", 90},
		[]any{"cs101", "cam", 70})
	res, err := sys.Query("course_average(C, A)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Sorted: cs101 then cs99.
	if res.Rows[0][0].Str() != "cs101" || res.Rows[0][1].Float() != 70 {
		t.Errorf("cs101 avg = %v", res.Rows[0])
	}
	if res.Rows[1][0].Str() != "cs99" || res.Rows[1][1].Float() != 85 {
		t.Errorf("cs99 avg = %v", res.Rows[1])
	}
}

func TestAggregationPreservesDuplicates(t *testing.T) {
	// §3.3: two equal temperature readings at different places must both
	// count toward the mean.
	sys := New()
	sys.Load(`edb reading(Place, T);`)
	sys.Assert("reading", []any{"a", 10}, []any{"b", 10}, []any{"c", 40})
	res, err := sys.Query("reading(P, T) & M = mean(T) & P = 'a'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if got := res.Rows[0][2].Float(); got != 20 {
		t.Errorf("mean = %v, want 20 (duplicates preserved)", got)
	}
}

func TestNegation(t *testing.T) {
	sys := New()
	err := sys.Load(`
edb person(X), rich(X);
poor(X) :- person(X) & !rich(X).
`)
	if err != nil {
		t.Fatal(err)
	}
	sys.Assert("person", []any{"a"}, []any{"b"}, []any{"c"})
	sys.Assert("rich", []any{"b"})
	res, err := sys.Query("poor(X)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].Str() != "a" || res.Rows[1][0].Str() != "c" {
		t.Errorf("poor = %v", res.Rows)
	}
}

func TestHiLogSets(t *testing.T) {
	// §5's class_info example, simplified: set-valued attributes hold
	// predicate names; S(X) dispatches through the name.
	sys := New()
	err := sys.Load(`
edb attends(N, ID), class_subject(ID, Subj);
students(ID)(N) :- attends(N, ID).
class_info(ID, S) :- class_subject(ID, _) & S = students(ID).
member_of(X, S) :- class_info(_, S) & S(X).
`)
	if err != nil {
		t.Fatal(err)
	}
	sys.Assert("attends", []any{"wilson", "cs99"}, []any{"green", "cs99"},
		[]any{"hu", "cs101"})
	sys.Assert("class_subject", []any{"cs99", "databases"}, []any{"cs101", "compilers"})
	// Static ground family reference.
	res, err := sys.Query("students(cs99)(N)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("students(cs99) = %v", res.Rows)
	}
	// Dynamic dispatch through a predicate variable.
	res, err = sys.Query("class_info(cs99, S) & S(N)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("dynamic dispatch rows = %v", res.Rows)
	}
	// The set value is the name, not the extension.
	res, err = sys.Query("class_info(cs101, S)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || !res.Rows[0][0].Equal(Compound("students", Str("cs101"))) {
		t.Errorf("set attribute = %v", res.Rows)
	}
}

func TestSetEqProcedure(t *testing.T) {
	// §5.1's set_eq procedure comparing two sets extensionally.
	sys := New()
	err := sys.Load(`
edb s1(X), s2(X), s3(X);
proc set_eq(S, T:)
rels different(S,T);
  different(S,T):= in(S,T) & S(X) & !T(X).
  different(S,T)+= in(S,T) & T(X) & !S(X).
  return(S,T:):= !different(S,T).
end
`)
	if err != nil {
		t.Fatal(err)
	}
	sys.Assert("s1", []any{1}, []any{2})
	sys.Assert("s2", []any{1}, []any{2})
	sys.Assert("s3", []any{1}, []any{3})
	eq, err := sys.Call("main", "set_eq", []any{Str("s1"), Str("s2")})
	if err != nil {
		t.Fatal(err)
	}
	if len(eq) != 1 {
		t.Errorf("s1 = s2 should hold: %v", eq)
	}
	ne, err := sys.Call("main", "set_eq", []any{Str("s1"), Str("s3")})
	if err != nil {
		t.Fatal(err)
	}
	if len(ne) != 0 {
		t.Errorf("s1 != s3 should hold: %v", ne)
	}
}

func TestUpdatesAndModify(t *testing.T) {
	sys := New()
	err := sys.Load(`
edb account(Id, Bal), bonus(Id);
proc pay(:)
  account(Id, B2) +=[Id] account(Id, B) & bonus(Id) & B2 = B + 100.
  return(:):= account(_, _).
end
`)
	if err != nil {
		t.Fatal(err)
	}
	sys.Assert("account", []any{1, 50}, []any{2, 70})
	sys.Assert("bonus", []any{2})
	if _, err := sys.Call("main", "pay"); err != nil {
		t.Fatal(err)
	}
	rows, _ := sys.Relation("account", 2)
	if len(rows) != 2 {
		t.Fatalf("account rows = %v", rows)
	}
	if rows[0][1].Int() != 50 || rows[1][1].Int() != 170 {
		t.Errorf("balances = %v", rows)
	}
}

func TestInBodyUpdates(t *testing.T) {
	// ++/-- subgoals (Figure 1 uses --possible(It, D)).
	sys := New()
	err := sys.Load(`
edb queue(X), log(X);
proc drain(:)
  repeat
    done(X) := queue(X) & X = min(X) & ++log(X) & --queue(X).
  until empty(queue(_));
  return(:) := log(_).
end
edb done(X);
`)
	if err != nil {
		t.Fatal(err)
	}
	sys.Assert("queue", []any{3}, []any{1}, []any{2})
	if _, err := sys.Call("main", "drain"); err != nil {
		t.Fatal(err)
	}
	logRows, _ := sys.Relation("log", 1)
	if len(logRows) != 3 {
		t.Errorf("log = %v", logRows)
	}
	queueRows, _ := sys.Relation("queue", 1)
	if len(queueRows) != 0 {
		t.Errorf("queue not drained: %v", queueRows)
	}
}

func TestWriteBuiltin(t *testing.T) {
	var buf bytes.Buffer
	sys := New(WithOutput(&buf))
	err := sys.Load(`
edb greeting(X);
proc hello(:)
  ok() := greeting(G) & write('hello', G).
  return(:) := ok().
end
edb ok();
`)
	if err != nil {
		t.Fatal(err)
	}
	sys.Assert("greeting", []any{"world"}, []any{"moon"})
	if _, err := sys.Call("main", "hello"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "hello moon") || !strings.Contains(out, "hello world") {
		t.Errorf("output = %q", out)
	}
	if strings.Index(out, "moon") > strings.Index(out, "world") {
		t.Errorf("write output should be sorted: %q", out)
	}
}

func TestForeignProcedure(t *testing.T) {
	sys := New()
	if err := sys.Register("double", 1, 1, false,
		func(in [][]Value) ([][]Value, error) {
			var out [][]Value
			for _, row := range in {
				out = append(out, []Value{row[0], Int(row[0].Int() * 2)})
			}
			return out, nil
		}); err != nil {
		t.Fatal(err)
	}
	sys.Load(`
edb num(X);
doubled(X, Y) :- num(X) & double(X, Y).
`)
	sys.Assert("num", []any{3}, []any{5})
	res, err := sys.Query("doubled(X, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][1].Int() != 6 || res.Rows[1][1].Int() != 10 {
		t.Errorf("doubled = %v", res.Rows)
	}
}

func TestStringBuiltins(t *testing.T) {
	sys := New()
	sys.Load(`edb name(N);`)
	sys.Assert("name", []any{"ada"})
	res, err := sys.Query("name(N) & G = strcat('hi ', N) & L = strlen(N) & S = substr(N, 2, 2)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	row := res.Rows[0]
	if row[1].Str() != "hi ada" || row[2].Int() != 3 || row[3].Str() != "da" {
		t.Errorf("string ops = %v", row)
	}
}

func TestArithmeticAndComparisons(t *testing.T) {
	sys := New()
	sys.Load(`edb p(X);`)
	sys.Assert("p", []any{1}, []any{2}, []any{3}, []any{4})
	res, err := sys.Query("p(X) & Y = X*X & Y > 4 & Y mod 2 = 0 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 4 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestEDBPersistence(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/edb.bin"
	sys := New()
	sys.Load(`edb edge(X,Y);`)
	sys.Assert("edge", []any{1, 2})
	if err := sys.SaveEDB(path); err != nil {
		t.Fatal(err)
	}
	sys2 := New()
	sys2.Load(`
edb edge(X,Y);
tc(X,Y) :- edge(X,Y).
`)
	if err := sys2.LoadEDB(path); err != nil {
		t.Fatal(err)
	}
	res, err := sys2.Query("tc(1, X)")
	if err != nil {
		t.Fatal(err)
	}
	wantInts(t, res, 2)
}

func TestStratifiedNegationThroughRecursionRejected(t *testing.T) {
	sys := New()
	sys.Load(`
edb e(X);
p(X) :- e(X) & !q(X).
q(X) :- e(X) & !p(X).
`)
	_, err := sys.Query("p(X)")
	if err == nil || !strings.Contains(err.Error(), "stratified") {
		t.Errorf("expected stratification error, got %v", err)
	}
}

func TestModulesAcrossImports(t *testing.T) {
	sys := New()
	err := sys.Load(`
module graph;
export reach(X:Y);
edb link(X,Y);
r(X,Y) :- link(X,Y).
r(X,Z) :- r(X,Y) & link(Y,Z).
proc reach(X:Y)
  return(X:Y) := r(X,Y).
end
end
module app;
export go(X:Y);
from graph import reach(X:Y);
proc go(X:Y)
  return(X:Y) := reach(X,Y).
end
end
`)
	if err != nil {
		t.Fatal(err)
	}
	sys.Assert("link", []any{1, 2}, []any{2, 3})
	out, err := sys.Call("app", "go", []any{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Errorf("go(1) = %v", out)
	}
}

func TestBaselineConfigsAgree(t *testing.T) {
	// Every ablation baseline must compute the same answers.
	configs := map[string][]Option{
		"default":      nil,
		"materialized": {WithMaterializedExecution()},
		"no-dedup":     {WithoutDupElimination()},
		"no-reorder":   {WithoutReordering()},
		"no-magic":     {WithoutMagicSets()},
		"naive":        {WithNaiveEvaluation()},
		"no-narrow":    {WithoutDispatchNarrowing()},
		"layered":      {WithLayeredBackend()},
	}
	var ref []int64
	for name, opts := range configs {
		sys := New(opts...)
		err := sys.Load(`
edb edge(X,Y);
tc(X,Y) :- edge(X,Y).
tc(X,Z) :- tc(X,Y) & edge(Y,Z).
`)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sys.Assert("edge", []any{1, 2}, []any{2, 3}, []any{3, 4}, []any{4, 2})
		res, err := sys.Query("tc(1, X)")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := rowsAsInts(t, res)
		if ref == nil {
			ref = got
			continue
		}
		if len(got) != len(ref) {
			t.Fatalf("%s: got %v, want %v", name, got, ref)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("%s: got %v, want %v", name, got, ref)
			}
		}
	}
}

func TestQueryErrors(t *testing.T) {
	sys := New()
	sys.Load(`edb p(X);`)
	if _, err := sys.Query("nosuch(X)"); err == nil {
		t.Error("unknown predicate should fail")
	}
	if _, err := sys.Query("p(X) & Y < 3"); err == nil {
		t.Error("unbound comparison should fail")
	}
	if _, err := sys.Query("p(X) &"); err == nil {
		t.Error("syntax error should fail")
	}
}

func TestLoopLimit(t *testing.T) {
	sys := New(WithLoopLimit(5))
	err := sys.Load(`
edb tick(X);
proc spin(:)
  repeat
    tick(1) += tick(0).
  until empty(nothing(_));
  return(:) := tick(_).
end
edb nothing(X);
`)
	if err != nil {
		t.Fatal(err)
	}
	sys.Assert("tick", []any{0})
	sys.Assert("nothing", []any{1})
	_, err = sys.Call("main", "spin")
	if err == nil || !strings.Contains(err.Error(), "iterations") {
		t.Errorf("expected loop-limit error, got %v", err)
	}
}
