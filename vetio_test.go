package gluenail

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Static I/O hygiene checks over the persistence packages. Two rules,
// both enforced as failing tests so CI catches regressions:
//
//  1. No ignored Close/Sync results: a bare `x.Close()` or `x.Sync()`
//     expression (or defer/go) statement silently drops the error that
//     tells us a write never reached the device. Handle it or discard it
//     explicitly with `_ =`.
//  2. No direct package-os file I/O in wal/disk: every byte those
//     packages move must route through the fsio seam, or fault injection
//     has blind spots.

// ioVetPackages lists the directories under rule 1; the bool marks the
// packages that must also route I/O through fsio (rule 2). fsio itself
// wraps package os, so it is exempt from rule 2.
var ioVetPackages = map[string]bool{
	"internal/wal":          true,
	"internal/storage/disk": true,
	"internal/storage/fsio": false,
}

// osFileIO is the package-os surface that bypasses the fsio seam.
var osFileIO = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "ReadDir": true, "Rename": true,
	"Remove": true, "RemoveAll": true, "Mkdir": true, "MkdirAll": true,
	"MkdirTemp": true, "Truncate": true, "Chmod": true, "Symlink": true,
	"Link": true,
}

func TestIOVet(t *testing.T) {
	var violations []string
	for dir, sealed := range ioVetPackages {
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			name := e.Name()
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			fset := token.NewFileSet()
			file, err := parser.ParseFile(fset, path, nil, 0)
			if err != nil {
				t.Fatalf("parse %s: %v", path, err)
			}
			violations = append(violations, vetFile(fset, file, sealed)...)
		}
	}
	if len(violations) > 0 {
		t.Fatalf("I/O hygiene violations:\n  %s", strings.Join(violations, "\n  "))
	}
}

// vetFile returns rule violations in one parsed file.
func vetFile(fset *token.FileSet, file *ast.File, sealed bool) []string {
	var out []string
	report := func(pos token.Pos, format string, args ...any) {
		out = append(out, fmt.Sprintf("%s: %s", fset.Position(pos), fmt.Sprintf(format, args...)))
	}
	// closeOrSync reports whether call is a method call named Close/Sync
	// (either case — the packages use unexported helpers too).
	closeOrSync := func(call *ast.CallExpr) (string, bool) {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || len(call.Args) != 0 {
			return "", false
		}
		switch sel.Sel.Name {
		case "Close", "Sync", "close", "sync":
			return sel.Sel.Name, true
		}
		return "", false
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if name, ok := closeOrSync(call); ok {
					report(n.Pos(), "result of %s() ignored; handle the error or discard it with `_ =`", name)
				}
			}
		case *ast.DeferStmt:
			if name, ok := closeOrSync(n.Call); ok {
				report(n.Pos(), "deferred %s() drops its error; wrap it in `defer func() { _ = x.%s() }()` or handle it", name, name)
			}
		case *ast.GoStmt:
			if name, ok := closeOrSync(n.Call); ok {
				report(n.Pos(), "go %s() drops its error", name)
			}
		case *ast.CallExpr:
			if !sealed {
				return true
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if pkg, ok := sel.X.(*ast.Ident); ok && pkg.Name == "os" && pkg.Obj == nil && osFileIO[sel.Sel.Name] {
					report(n.Pos(), "direct os.%s bypasses the fsio seam; route it through the store's fsio.FS", sel.Sel.Name)
				}
			}
		}
		return true
	})
	return out
}
