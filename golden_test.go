package gluenail

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Golden-file program tests: each testdata/programs/*.glue file is a
// complete program whose header comments drive the runner:
//
//	% QUERY: goals...      evaluate and print the sorted answers
//	% CALL: module.proc    call a 0-bound procedure, print its results
//
// Output (including anything the program writes) is compared against the
// .out golden file; regenerate with `go test -run TestGoldenPrograms
// -update`.
var update = flag.Bool("update", false, "rewrite golden .out files")

func TestGoldenPrograms(t *testing.T) {
	files, err := filepath.Glob("testdata/programs/*.glue")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no golden programs found")
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			got := runGolden(t, file)
			goldenPath := strings.TrimSuffix(file, ".glue") + ".out"
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("output mismatch for %s:\n--- got ---\n%s--- want ---\n%s",
					file, got, want)
			}
		})
	}
}

// TestGoldenProgramsParallel re-runs every golden program with an 8-worker
// pool and a tiny fan-out threshold, so even the small golden workloads
// take the morsel-parallel code paths. The output must match the golden
// bytes exactly: worker count must never change observable results.
func TestGoldenProgramsParallel(t *testing.T) {
	files, err := filepath.Glob("testdata/programs/*.glue")
	if err != nil {
		t.Fatal(err)
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			got := runGolden(t, file, WithParallelism(8), WithParallelThreshold(2))
			goldenPath := strings.TrimSuffix(file, ".glue") + ".out"
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("parallel execution diverged from golden output for %s:\n--- got ---\n%s--- want ---\n%s",
					file, got, want)
			}
		})
	}
}

func runGolden(t *testing.T, file string, opts ...Option) string {
	t.Helper()
	src, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	sys := New(append([]Option{WithOutput(&out)}, opts...)...)
	if err := sys.Load(string(src)); err != nil {
		t.Fatalf("%s: %v", file, err)
	}
	for _, line := range strings.Split(string(src), "\n") {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "% QUERY:"):
			q := strings.TrimSpace(strings.TrimPrefix(line, "% QUERY:"))
			fmt.Fprintf(&out, "?- %s\n", q)
			res, err := sys.Query(q)
			if err != nil {
				t.Fatalf("%s: query %q: %v", file, q, err)
			}
			if len(res.Vars) == 0 {
				fmt.Fprintln(&out, len(res.Rows) > 0)
				continue
			}
			for _, row := range res.Rows {
				parts := make([]string, len(row))
				for i, v := range row {
					parts[i] = fmt.Sprintf("%s=%v", res.Vars[i], v)
				}
				fmt.Fprintf(&out, "  %s\n", strings.Join(parts, " "))
			}
		case strings.HasPrefix(line, "% CALL:"):
			spec := strings.TrimSpace(strings.TrimPrefix(line, "% CALL:"))
			mod, proc, ok := strings.Cut(spec, ".")
			if !ok {
				mod, proc = "main", spec
			}
			fmt.Fprintf(&out, "call %s\n", spec)
			rows, err := sys.Call(mod, proc)
			if err != nil {
				t.Fatalf("%s: call %q: %v", file, spec, err)
			}
			for _, row := range rows {
				parts := make([]string, len(row))
				for i, v := range row {
					parts[i] = v.String()
				}
				fmt.Fprintf(&out, "  %s\n", strings.Join(parts, " "))
			}
		}
	}
	return out.String()
}
