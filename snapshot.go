package gluenail

// Snapshot sessions: concurrent, isolated reads over a live System.
//
// A Snapshot captures the EDB at a statement boundary (the multi-version
// machinery lives in internal/storage: commit-sequence-number dead stamps
// plus copy-on-write through the garbage collector) and executes queries
// on a private machine with a private scratch store, entirely outside the
// System's lock. Any number of snapshot sessions run concurrently with
// each other and with the single writer; the writer never waits for a
// reader and a reader never waits for the writer. Every query a session
// runs sees exactly the state its snapshot captured — byte-identical
// results no matter what commits afterwards, at any worker count,
// including recursive queries.

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"strings"
	"sync"

	"gluenail/internal/plan"
	"gluenail/internal/storage"
	"gluenail/internal/term"
	"gluenail/internal/vm"
)

// Snapshot is an isolated read session over the state of the System at
// the moment it was taken. It answers queries concurrently with the live
// system's writers and with other snapshots, always from its captured
// state. A Snapshot executes one statement at a time (concurrent calls on
// the same snapshot serialize); open as many snapshots as there are
// concurrent readers. Writes through a snapshot — EDB updates reached by
// a procedure a query calls — fail with a governed error.
//
// A Snapshot holds no locks and pins no writer resources; dropping it
// (or calling Close) releases its captured memory to the garbage
// collector once the last reference is gone.
type Snapshot struct {
	sys *System
	// mu serializes statements on this session: the machine is stateful
	// (frames, profiles, plan cache) and runs one call at a time.
	mu      sync.Mutex
	store   storage.SnapshotStore
	temp    storage.Store
	machine *vm.Machine
	budget  Budget
	closed  bool
}

// Snapshot opens an isolated read session over the current committed
// state. It requires the main-memory backend (the layered baseline store
// has no multi-version support). The snapshot inherits the system's
// configured budget and parallelism; SetBudget and SetParallelism
// override them per session.
func (s *System) Snapshot() (*Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.ensure(); err != nil {
		return nil, err
	}
	if s.eng == nil {
		return nil, fmt.Errorf("gluenail: snapshots require a multi-version backend (not WithLayeredBackend)")
	}
	store, err := s.eng.SnapshotView()
	if err != nil {
		return nil, err
	}
	temp, err := newScratchStore(&s.cfg)
	if err != nil {
		closeStore(store)
		return nil, err
	}
	m := vm.New(s.progView(), store, temp, s.registry)
	s.tuneMachine(m, s.cfg.budget)
	// Session I/O is private: write/nl output from a snapshot query is
	// discarded unless SetOutput directs it somewhere, and read_line
	// sees EOF. The shared trace writer is not inherited — interleaved
	// trace lines from concurrent sessions would be garbage.
	m.Out = io.Discard
	m.In = bufio.NewReader(strings.NewReader(""))
	return &Snapshot{sys: s, store: store, temp: temp, machine: m, budget: s.cfg.budget}, nil
}

// closeStore closes a store that has a Close method (disk-backed snapshot
// views pin run files; spill scratch stores own a directory). Main-memory
// stores close as no-ops.
func closeStore(st any) error {
	if c, ok := st.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// CSN returns the commit sequence number the snapshot was captured at;
// it identifies the exact committed state every query of this session
// reads.
func (sn *Snapshot) CSN() uint64 { return sn.store.CSN() }

// CSN returns the system's current commit sequence number: the count of
// committed statement boundaries. Zero for the layered backend (which
// has no multi-version support).
func (s *System) CSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.eng == nil {
		return 0
	}
	return s.eng.CommitCSN()
}

// SetBudget replaces the session's resource budget: subsequent queries
// run under b's timeout, tuple, cardinality, depth, and loop limits,
// enforced by the execution governor exactly as on the live system.
func (sn *Snapshot) SetBudget(b Budget) {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	sn.budget = b
	if sn.machine != nil {
		sn.sys.tuneMachine(sn.machine, b)
	}
}

// SetParallelism bounds the morsel workers this session's queries fan out
// to (0 = GOMAXPROCS, 1 = sequential). The server uses it to share the
// machine's cores fairly across active sessions; results are identical at
// every setting.
func (sn *Snapshot) SetParallelism(n int) {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	if sn.machine != nil {
		sn.machine.Parallelism = n
	}
}

// SetOutput directs write/nl output from this session's queries to w.
func (sn *Snapshot) SetOutput(w io.Writer) {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	if sn.machine != nil {
		sn.machine.Out = w
	}
}

// Close ends the session and releases its captured resources. For a
// main-memory snapshot closing is optional (an abandoned session costs
// only memory until the garbage collector reclaims it); a disk-backed
// snapshot pins run file handles and a spill-configured session owns a
// scratch directory, so those sessions should be closed.
func (sn *Snapshot) Close() error {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	if sn.closed {
		return nil
	}
	sn.closed = true
	sn.machine = nil
	err := closeStore(sn.store)
	if cerr := closeStore(sn.temp); err == nil {
		err = cerr
	}
	return err
}

// Query evaluates a goal conjunction in the main module's scope against
// the snapshot.
func (sn *Snapshot) Query(goals string) (*Result, error) {
	return sn.QueryInContext(context.Background(), "main", goals)
}

// QueryContext is Query under the caller's context; cancellation and
// deadlines abort with a *GovernorError exactly as on the live system.
func (sn *Snapshot) QueryContext(ctx context.Context, goals string) (*Result, error) {
	return sn.QueryInContext(ctx, "main", goals)
}

// QueryIn evaluates a goal conjunction in the named module's scope
// against the snapshot.
func (sn *Snapshot) QueryIn(module, goals string) (*Result, error) {
	return sn.QueryInContext(context.Background(), module, goals)
}

// QueryInContext is QueryIn under the caller's context.
//
// Compilation (shared, cached, under the system's lock) and execution
// (private, against the captured state, outside it) are split: a query
// text seen before costs no lock beyond the cache probe.
func (sn *Snapshot) QueryInContext(ctx context.Context, module, goals string) (*Result, error) {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	if sn.closed {
		return nil, errSnapshotClosed
	}
	id, vars, prog, err := sn.sys.compileQueryView(module, goals)
	if err != nil {
		return nil, err
	}
	return sn.run(ctx, prog, id, vars)
}

// Execute runs a prepared query against the snapshot: the server's hot
// path — parse, compile, and physical planning amortized across sessions
// through the shared Prepared handle and the session plan cache.
func (sn *Snapshot) Execute(p *Prepared) (*Result, error) {
	return sn.ExecuteContext(context.Background(), p)
}

// ExecuteContext is Execute under the caller's context.
func (sn *Snapshot) ExecuteContext(ctx context.Context, p *Prepared) (*Result, error) {
	if p.sys != sn.sys {
		return nil, fmt.Errorf("gluenail: prepared query belongs to a different System")
	}
	sn.mu.Lock()
	defer sn.mu.Unlock()
	if sn.closed {
		return nil, errSnapshotClosed
	}
	id, vars, prog, err := sn.sys.preparedView(p)
	if err != nil {
		return nil, err
	}
	return sn.run(ctx, prog, id, vars)
}

// Relation returns the snapshot's sorted contents of an EDB relation —
// the state at capture, regardless of later commits.
func (sn *Snapshot) Relation(relation any, arity int) ([][]Value, error) {
	name, err := toValue(relation)
	if err != nil {
		return nil, err
	}
	rel, ok := sn.store.Get(name, arity)
	if !ok {
		return nil, nil
	}
	tuples := storage.Sorted(rel)
	out := make([][]Value, len(tuples))
	for i, t := range tuples {
		out[i] = []Value(t)
	}
	return out, nil
}

// run executes a compiled query procedure on the session machine under
// the session budget. Called with sn.mu held.
func (sn *Snapshot) run(ctx context.Context, prog *plan.Program, id string, vars []string) (*Result, error) {
	sn.machine.Prog = prog
	if sn.budget.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, sn.budget.Timeout)
		defer cancel()
	}
	tuples, err := sn.machine.CallProcContext(ctx, id, []term.Tuple{{}})
	if err != nil {
		return nil, err
	}
	res := &Result{Vars: vars}
	sorted := make([]term.Tuple, len(tuples))
	copy(sorted, tuples)
	sortTuples(sorted)
	for _, t := range sorted {
		res.Rows = append(res.Rows, []Value(t))
	}
	return res, nil
}

var errSnapshotClosed = fmt.Errorf("gluenail: snapshot session is closed")

// compileQueryView compiles (or re-serves from cache) a query under the
// system lock and returns its procedure ID, output variables, and the
// immutable program view a snapshot machine may execute without racing
// later compilations.
func (s *System) compileQueryView(module, goals string) (string, []string, *plan.Program, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.ensure(); err != nil {
		return "", nil, nil, err
	}
	id, vars, err := s.prepareQuery(module, goals)
	if err != nil {
		return "", nil, nil, err
	}
	return id, vars, s.progView(), nil
}

// preparedView resolves a Prepared handle under the system lock —
// re-preparing it if the program was recompiled since — and returns the
// procedure ID, output variables, and immutable program view.
func (s *System) preparedView(p *Prepared) (string, []string, *plan.Program, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.ensure(); err != nil {
		return "", nil, nil, err
	}
	if p.gen != s.gen {
		id, vars, err := s.prepareQuery(p.module, p.goals)
		if err != nil {
			return "", nil, nil, err
		}
		p.id, p.vars, p.gen = id, vars, s.gen
	}
	return p.id, p.vars, s.progView(), nil
}
